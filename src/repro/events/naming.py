"""Predicate namespaces for transition programs.

The paper works with four copies of every predicate ``P``:

====================  ==================  =============================
paper notation        predicate name      meaning
====================  ==================  =============================
``P^o`` (old state)   ``P``               current database state
``P^n`` (new state)   ``new$P``           state after the transaction
``ιP`` (insertion)    ``ins$P``           insertion events (paper: ␣ι)
``δP`` (deletion)     ``del$P``           deletion events
====================  ==================  =============================

The ``$`` character cannot appear in parsed programs, so the namespaces can
never collide with user predicates.  :func:`display` renders prefixed names
back into the paper's notation (``ιP`` / ``δP`` / ``Pn`` / ``Po``).
"""

from __future__ import annotations

from enum import Enum

from repro.datalog.rules import Atom, Literal
from repro.datalog.terms import Term

INS_PREFIX = "ins$"
DEL_PREFIX = "del$"
NEW_PREFIX = "new$"

_PREFIXES = (INS_PREFIX, DEL_PREFIX, NEW_PREFIX)


class EventKind(Enum):
    """Insertion (``ι``) or deletion (``δ``) events."""

    INSERTION = "insertion"
    DELETION = "deletion"

    @property
    def symbol(self) -> str:
        """The paper's one-character notation."""
        return "ι" if self is EventKind.INSERTION else "δ"

    @property
    def prefix(self) -> str:
        """The predicate-name prefix of this kind."""
        return INS_PREFIX if self is EventKind.INSERTION else DEL_PREFIX

    def opposite(self) -> "EventKind":
        """Insertion <-> deletion."""
        if self is EventKind.INSERTION:
            return EventKind.DELETION
        return EventKind.INSERTION


def ins_name(predicate: str) -> str:
    """``P`` -> ``ins$P`` (the ``ιP`` predicate)."""
    return INS_PREFIX + predicate


def del_name(predicate: str) -> str:
    """``P`` -> ``del$P`` (the ``δP`` predicate)."""
    return DEL_PREFIX + predicate


def new_name(predicate: str) -> str:
    """``P`` -> ``new$P`` (the ``P^n`` predicate)."""
    return NEW_PREFIX + predicate


def event_name(kind: EventKind, predicate: str) -> str:
    """Prefixed event-predicate name for *kind*."""
    return kind.prefix + predicate


def is_event_predicate(name: str) -> bool:
    """True for ``ins$P`` / ``del$P`` names."""
    return name.startswith(INS_PREFIX) or name.startswith(DEL_PREFIX)


def is_new_predicate(name: str) -> bool:
    """True for ``new$P`` names."""
    return name.startswith(NEW_PREFIX)


def strip_prefix(name: str) -> str:
    """Remove one namespace prefix, returning the underlying predicate."""
    for prefix in _PREFIXES:
        if name.startswith(prefix):
            return name[len(prefix):]
    return name


def parse_prefixed(name: str) -> tuple[str, str]:
    """Split a name into (namespace, base predicate).

    The namespace is one of ``"ins"``, ``"del"``, ``"new"`` or ``"old"``.
    """
    if name.startswith(INS_PREFIX):
        return "ins", name[len(INS_PREFIX):]
    if name.startswith(DEL_PREFIX):
        return "del", name[len(DEL_PREFIX):]
    if name.startswith(NEW_PREFIX):
        return "new", name[len(NEW_PREFIX):]
    return "old", name


def event_kind_of(name: str) -> EventKind | None:
    """The event kind of a prefixed name, or None for old/new names."""
    if name.startswith(INS_PREFIX):
        return EventKind.INSERTION
    if name.startswith(DEL_PREFIX):
        return EventKind.DELETION
    return None


def event_atom(kind: EventKind, predicate: str, args: tuple[Term, ...]) -> Atom:
    """Build the atom ``ins$P(args)`` / ``del$P(args)``."""
    return Atom(event_name(kind, predicate), args)


def event_literal(kind: EventKind, predicate: str, args: tuple[Term, ...],
                  positive: bool = True) -> Literal:
    """Build an event literal, optionally negated."""
    return Literal(event_atom(kind, predicate, args), positive)


def display(name: str) -> str:
    """Render a prefixed predicate name in the paper's notation."""
    namespace, base = parse_prefixed(name)
    if namespace == "ins":
        return f"ι{base}"
    if namespace == "del":
        return f"δ{base}"
    if namespace == "new":
        return f"{base}n"
    return base


def display_atom(target: Atom) -> str:
    """Render an atom in the paper's notation."""
    name = display(target.predicate)
    if not target.args:
        return name
    return f"{name}({', '.join(str(t) for t in target.args)})"


def display_literal(literal: Literal) -> str:
    """Render a literal in the paper's notation (¬ for negation)."""
    rendered = display_atom(literal.atom)
    return rendered if literal.positive else f"¬{rendered}"
