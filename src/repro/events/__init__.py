"""Events, transition rules and event rules (Section 3 of the paper).

This package turns a deductive database into its *transition program*:

- :mod:`repro.events.naming` -- the predicate namespaces ``P`` (old state),
  ``new$P`` (new state), ``ins$P`` (insertion event ``ιP``) and ``del$P``
  (deletion event ``δP``);
- :mod:`repro.events.events` -- ground events and transactions (§3.1);
- :mod:`repro.events.dnf` -- the disjunctive-normal-form algebra both
  interpretations manipulate;
- :mod:`repro.events.transition` -- transition rules (§3.2);
- :mod:`repro.events.event_rules` -- insertion/deletion event rules (§3.3)
  with the optional [Oli91]-style simplifications.
"""

from repro.events.naming import (
    DEL_PREFIX,
    INS_PREFIX,
    NEW_PREFIX,
    EventKind,
    del_name,
    event_atom,
    event_literal,
    ins_name,
    is_event_predicate,
    new_name,
    parse_prefixed,
    strip_prefix,
)
from repro.events.events import (Event, Transaction, delete, insert,
                                 parse_transaction, transaction_between)
from repro.events.requests import parse_request, parse_requests
from repro.events.dnf import Conjunct, Dnf, FALSE_DNF, TRUE_DNF
from repro.events.transition import TransitionRule, TransitionCompiler
from repro.events.event_rules import EventCompiler, EventRule, TransitionProgram

__all__ = [
    "Conjunct",
    "DEL_PREFIX",
    "Dnf",
    "Event",
    "EventCompiler",
    "EventKind",
    "EventRule",
    "FALSE_DNF",
    "INS_PREFIX",
    "NEW_PREFIX",
    "TRUE_DNF",
    "Transaction",
    "TransitionCompiler",
    "TransitionProgram",
    "TransitionRule",
    "del_name",
    "delete",
    "event_atom",
    "event_literal",
    "ins_name",
    "insert",
    "is_event_predicate",
    "new_name",
    "parse_prefixed",
    "parse_request",
    "parse_requests",
    "parse_transaction",
    "transaction_between",
    "strip_prefix",
]
