"""Disjunctive-normal-form algebra over literals.

Both interpretations of the event rules manipulate DNF formulas whose
literals are old-state literals and event literals (Sections 3.2 and 4.2).
A :class:`Dnf` is a set of :class:`Conjunct`; a conjunct is a set of
:class:`~repro.datalog.rules.Literal`.

The algebra implements exactly what the paper uses:

- conjunction ("the DNF of the logical conjunction", §4.2),
- negation ("the DNF of the logical negation", §4.2),
- the simplifications that keep results minimal: complementary-pair pruning,
  contradictory-event pruning (``ιQ(c) ∧ δQ(c)`` is unsatisfiable because
  (1) and (2) make the two events mutually exclusive) and subsumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.datalog.rules import Atom, Literal
from repro.datalog.unification import Substitution, substitute_literal
from repro.events.naming import DEL_PREFIX, INS_PREFIX

Conjunct = frozenset[Literal]


def _is_contradictory(conjunct: Conjunct) -> bool:
    """True when the conjunct can never hold in any transition.

    Two cases: a literal and its negation, or a positive insertion event
    together with the positive deletion event on the same atom.
    """
    for literal in conjunct:
        if literal.negate() in conjunct:
            return True
        if literal.positive and literal.predicate.startswith(INS_PREFIX):
            twin = Atom(DEL_PREFIX + literal.predicate[len(INS_PREFIX):],
                        literal.args)
            if Literal(twin, True) in conjunct:
                return True
    return False


@dataclass(frozen=True)
class Dnf:
    """An immutable DNF formula: a set of conjuncts (empty set = false)."""

    disjuncts: frozenset[Conjunct] = frozenset()

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def true() -> "Dnf":
        """The formula ``true`` (one empty conjunct)."""
        return TRUE_DNF

    @staticmethod
    def false() -> "Dnf":
        """The formula ``false`` (no conjuncts)."""
        return FALSE_DNF

    @staticmethod
    def of_literal(literal: Literal) -> "Dnf":
        """A single-literal formula."""
        return Dnf(frozenset({frozenset({literal})}))

    @staticmethod
    def of_conjunct(literals: Iterable[Literal]) -> "Dnf":
        """A single-conjunct formula."""
        return Dnf(frozenset({frozenset(literals)}))

    @staticmethod
    def of_disjuncts(conjuncts: Iterable[Iterable[Literal]]) -> "Dnf":
        """A formula from explicit conjuncts."""
        return Dnf(frozenset(frozenset(c) for c in conjuncts))

    # -- predicates -------------------------------------------------------------

    @property
    def is_false(self) -> bool:
        """No disjunct -- unsatisfiable."""
        return not self.disjuncts

    @property
    def is_true(self) -> bool:
        """Contains the empty conjunct -- trivially satisfiable."""
        return frozenset() in self.disjuncts

    def __iter__(self) -> Iterator[Conjunct]:
        return iter(self.disjuncts)

    def __len__(self) -> int:
        return len(self.disjuncts)

    # -- algebra ----------------------------------------------------------------

    def or_(self, other: "Dnf") -> "Dnf":
        """Disjunction (simplified)."""
        return Dnf(self.disjuncts | other.disjuncts).simplified()

    def and_(self, other: "Dnf") -> "Dnf":
        """Conjunction: cross-product of conjuncts, pruning contradictions."""
        merged: set[Conjunct] = set()
        for left in self.disjuncts:
            for right in other.disjuncts:
                conjunct = left | right
                if not _is_contradictory(conjunct):
                    merged.add(conjunct)
        return Dnf(frozenset(merged)).simplified()

    def negated(self, max_size: int | None = None) -> "Dnf":
        """Logical negation, re-expanded to DNF.

        ``¬(C1 ∨ ... ∨ Cn) = ¬C1 ∧ ... ∧ ¬Cn`` where each ``¬Ci`` is the
        disjunction of the negated literals of ``Ci``.  The expansion is
        exponential in the worst case; ``max_size`` bounds the intermediate
        result and raises :class:`ComplexityLimitExceeded` beyond it.
        """
        from repro.datalog.errors import ComplexityLimitExceeded

        if self.is_false:
            return TRUE_DNF
        if self.is_true:
            return FALSE_DNF
        # Small clauses first keeps intermediates small (unit propagation).
        clauses = sorted(self.disjuncts, key=len)
        result = TRUE_DNF
        for conjunct in clauses:
            clause = Dnf(frozenset(frozenset({lit.negate()}) for lit in conjunct))
            result = result.and_(clause)
            if max_size is not None and len(result) > max_size:
                raise ComplexityLimitExceeded(
                    f"DNF negation grew past {max_size} disjuncts"
                )
        return result

    #: Above this many conjuncts the quadratic subsumption pass is skipped
    #: (it is an optimisation -- logical equivalence is unaffected).
    SUBSUMPTION_LIMIT = 600

    def simplified(self, subsume: bool | None = None) -> "Dnf":
        """Drop contradictory conjuncts and subsumed (superset) conjuncts.

        ``subsume`` forces the subsumption pass on (True) or off (False);
        by default it runs only below :data:`SUBSUMPTION_LIMIT` conjuncts,
        since it costs O(n²) subset tests.
        """
        viable = [c for c in self.disjuncts if not _is_contradictory(c)]
        if subsume is None:
            subsume = len(viable) <= self.SUBSUMPTION_LIMIT
        if not subsume:
            return Dnf(frozenset(viable))
        viable.sort(key=len)
        kept: list[Conjunct] = []
        for conjunct in viable:
            if not any(previous <= conjunct for previous in kept):
                kept.append(conjunct)
        return Dnf(frozenset(kept))

    def substitute(self, subst: Substitution) -> "Dnf":
        """Apply a substitution to every literal."""
        return Dnf(frozenset(
            frozenset(substitute_literal(lit, subst) for lit in conjunct)
            for conjunct in self.disjuncts
        ))

    def literals(self) -> frozenset[Literal]:
        """Every literal occurring anywhere in the formula."""
        collected: set[Literal] = set()
        for conjunct in self.disjuncts:
            collected.update(conjunct)
        return frozenset(collected)

    def is_ground(self) -> bool:
        """True when every literal is ground."""
        return all(lit.is_ground() for conjunct in self.disjuncts
                   for lit in conjunct)

    # -- display ------------------------------------------------------------------

    def __str__(self) -> str:
        from repro.events.naming import display_literal

        if self.is_false:
            return "false"
        if self.is_true:
            return "true"
        rendered = []
        for conjunct in sorted(self.disjuncts,
                               key=lambda c: sorted(str(lit) for lit in c)):
            body = " ∧ ".join(sorted(display_literal(lit) for lit in conjunct))
            rendered.append(f"({body})")
        return " ∨ ".join(rendered)


TRUE_DNF = Dnf(frozenset({frozenset()}))
FALSE_DNF = Dnf(frozenset())
