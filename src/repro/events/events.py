"""Ground events and transactions (Section 3.1 of the paper).

An :class:`Event` is one ``ιP(C)`` or ``δP(C)`` fact; a :class:`Transaction`
is the paper's ``T``: "an unspecified set of insertion and/or deletion base
event facts".  Transactions validate themselves (no fact both inserted and
deleted) and know how to apply themselves to a database, producing the new
state ``Dn``.

The definitions (1) and (2) of the paper require an insertion event's fact
to be false in the old state and a deletion event's to be true.  Events in a
user-supplied transaction that violate this are *no-ops* (they cause no
transition); :meth:`Transaction.normalized` drops them, and the interpreters
normalise by default so that the event rules' preconditions hold.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.datalog.errors import ParseError, TransactionError
from repro.datalog.parser import parse_atom
from repro.datalog.rules import Atom
from repro.datalog.terms import Constant
from repro.events.naming import EventKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.datalog.database import DeductiveDatabase


@dataclass(frozen=True, slots=True)
class Event:
    """A ground event fact: ``ιP(C)`` or ``δP(C)``."""

    kind: EventKind
    predicate: str
    args: tuple[Constant, ...] = ()

    def __post_init__(self) -> None:
        if not all(isinstance(a, Constant) for a in self.args):
            raise TransactionError(f"event arguments must be constants: {self}")

    @property
    def is_insertion(self) -> bool:
        """True for ``ιP`` events."""
        return self.kind is EventKind.INSERTION

    @property
    def is_deletion(self) -> bool:
        """True for ``δP`` events."""
        return self.kind is EventKind.DELETION

    def opposite(self) -> "Event":
        """The complementary event on the same fact."""
        return Event(self.kind.opposite(), self.predicate, self.args)

    def atom(self) -> Atom:
        """The underlying fact ``P(C)`` (without the event marker)."""
        return Atom(self.predicate, self.args)

    def is_noop_in(self, db: "DeductiveDatabase") -> bool:
        """True when the event violates its definition in the given state.

        ``ιP(C)`` is a no-op when ``P(C)`` already holds; ``δP(C)`` when it
        does not (definitions (1)/(2) of the paper).  Only meaningful for
        base predicates.
        """
        present = db.has_fact(self.predicate, *self.args)
        return present if self.is_insertion else not present

    def to_dict(self) -> dict:
        """A JSON-ready representation."""
        return {
            "kind": "insert" if self.is_insertion else "delete",
            "predicate": self.predicate,
            "args": [a.value for a in self.args],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Event":
        """Inverse of :meth:`to_dict`."""
        kind = payload.get("kind")
        if kind not in ("insert", "delete"):
            raise TransactionError(
                f"event 'kind' must be 'insert' or 'delete': {kind!r}")
        predicate = payload.get("predicate")
        if not isinstance(predicate, str) or not predicate:
            raise TransactionError(
                f"event 'predicate' must be a non-empty string: {predicate!r}")
        return cls(
            EventKind.INSERTION if kind == "insert" else EventKind.DELETION,
            predicate,
            tuple(Constant(value) for value in payload.get("args", ())),
        )

    def to_text(self) -> str:
        """The :func:`parse_transaction`-compatible form, e.g. ``insert P(A)``."""
        prefix = "insert " if self.is_insertion else "delete "
        return prefix + str(self.atom())

    def __str__(self) -> str:
        if not self.args:
            return f"{self.kind.symbol}{self.predicate}"
        rendered = ", ".join(str(a) for a in self.args)
        return f"{self.kind.symbol}{self.predicate}({rendered})"


def insert(predicate: str, *args) -> Event:
    """Build an insertion event, coercing raw values to constants."""
    return Event(EventKind.INSERTION, predicate, _coerce(args))


def delete(predicate: str, *args) -> Event:
    """Build a deletion event, coercing raw values to constants."""
    return Event(EventKind.DELETION, predicate, _coerce(args))


def _coerce(args: Iterable) -> tuple[Constant, ...]:
    return tuple(a if isinstance(a, Constant) else Constant(a) for a in args)


class Transaction:
    """An immutable set of base events, the paper's ``T``.

    Raises :class:`TransactionError` when the same fact is both inserted and
    deleted -- such a set does not denote a transition.
    """

    __slots__ = ("_events",)

    def __init__(self, events: Iterable[Event] = ()):
        event_set = frozenset(events)
        for event in event_set:
            if event.opposite() in event_set:
                raise TransactionError(
                    f"transaction both inserts and deletes {event.atom()}"
                )
        object.__setattr__(self, "_events", event_set)

    # -- set-like interface ---------------------------------------------------

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __contains__(self, event: Event) -> bool:
        return event in self._events

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Transaction):
            return self._events == other._events
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._events)

    def __or__(self, other: "Transaction") -> "Transaction":
        return Transaction(self._events | other._events)

    @property
    def events(self) -> frozenset[Event]:
        """The underlying event set."""
        return self._events

    def insertions(self) -> frozenset[Event]:
        """All ``ι`` events."""
        return frozenset(e for e in self._events if e.is_insertion)

    def deletions(self) -> frozenset[Event]:
        """All ``δ`` events."""
        return frozenset(e for e in self._events if e.is_deletion)

    def predicates(self) -> frozenset[str]:
        """Predicates touched by the transaction."""
        return frozenset(e.predicate for e in self._events)

    # -- semantics -------------------------------------------------------------

    def check_base_only(self, db: "DeductiveDatabase") -> None:
        """Raise unless every event touches a base predicate of *db*."""
        schema = db.schema
        for event in self._events:
            if schema.is_derived(event.predicate):
                raise TransactionError(
                    f"transaction event on derived predicate: {event}; "
                    f"request it through the downward interpretation instead"
                )

    def normalized(self, db: "DeductiveDatabase") -> "Transaction":
        """Drop events that are no-ops in the given state (see module doc)."""
        return Transaction(e for e in self._events if not e.is_noop_in(db))

    def apply_to(self, db: "DeductiveDatabase") -> "DeductiveDatabase":
        """Return the new state ``Dn = D ⊕ T`` (the input is not mutated)."""
        self.check_base_only(db)
        new_state = db.copy()
        for event in self._events:
            if event.is_insertion:
                new_state.add_fact(event.predicate, *event.args)
            else:
                new_state.remove_fact(event.predicate, *event.args)
        return new_state

    def to_dict(self) -> list[dict]:
        """A JSON-ready representation (sorted for determinism)."""
        return [e.to_dict() for e in sorted(self._events, key=str)]

    @classmethod
    def from_dict(cls, payload: Iterable[dict]) -> "Transaction":
        """Inverse of :meth:`to_dict`."""
        return cls(Event.from_dict(item) for item in payload)

    def to_text(self) -> str:
        """The :func:`parse_transaction`-compatible textual form.

        ``parse_transaction(t.to_text()) == t`` for every transaction
        (the empty transaction renders as ``{}``).
        """
        if not self._events:
            return "{}"
        return ", ".join(sorted(e.to_text() for e in self._events))

    def __str__(self) -> str:
        if not self._events:
            return "{}"
        rendered = ", ".join(sorted(str(e) for e in self._events))
        return "{" + rendered + "}"

    def __repr__(self) -> str:
        return f"Transaction({sorted(map(str, self._events))})"


def transaction_between(old: "DeductiveDatabase",
                        new: "DeductiveDatabase") -> Transaction:
    """The (unique) base-fact transaction turning *old* into *new*.

    Definitions (1)/(2) make the event set of a transition unique: the
    insertions are the facts of *new* missing from *old* and vice versa.
    Useful for diffing snapshots and for change-data capture.
    """
    old_facts = set(old.iter_facts())
    new_facts = set(new.iter_facts())
    events = [Event(EventKind.INSERTION, predicate, row)
              for predicate, row in new_facts - old_facts]
    events.extend(Event(EventKind.DELETION, predicate, row)
                  for predicate, row in old_facts - new_facts)
    return Transaction(events)


_EVENT_RE = re.compile(
    r"^\s*(?P<op>insert|delete|ins|del|ι|δ)\s*(?P<atom>.+?)\s*$"
)

_INSERT_OPS = {"insert", "ins", "ι"}


def _split_outside_parens(text: str) -> list[str]:
    """Split on top-level ',' or ';' (commas inside '()' are argument commas)."""
    pieces: list[str] = []
    depth = 0
    start = 0
    for index, char in enumerate(text):
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        elif char in ",;" and depth == 0:
            pieces.append(text[start:index])
            start = index + 1
    pieces.append(text[start:])
    return pieces


def parse_transaction(source: str) -> Transaction:
    """Parse ``"insert P(A), delete R(B)"`` (also ``ins``/``del``/``ι``/``δ``).

    Surrounding braces are ignored, so the paper's ``{δR(B)}`` notation works
    verbatim.
    """
    text = source.strip()
    if text.startswith("{") and text.endswith("}"):
        text = text[1:-1].strip()
    if not text:
        return Transaction()
    events: list[Event] = []
    for piece in _split_outside_parens(text):
        piece = piece.strip()
        if not piece:
            continue
        match = _EVENT_RE.match(piece)
        if match is None:
            raise ParseError(f"cannot parse transaction item: {piece!r}")
        kind = EventKind.INSERTION if match.group("op") in _INSERT_OPS \
            else EventKind.DELETION
        target = parse_atom(match.group("atom"))
        if not target.is_ground():
            raise ParseError(f"transaction events must be ground: {piece!r}")
        events.append(Event(kind, target.predicate, tuple(target.args)))  # type: ignore[arg-type]
    return Transaction(events)
