"""Datalog substrate: the deductive-database machinery the paper presupposes.

The paper (Section 2) assumes a function-free first-order language, a
partition of predicates into base and derived, allowed (range-restricted)
rules, and an evaluation mechanism for queries in a database state.  This
package provides all of it:

- :mod:`repro.datalog.terms` / :mod:`repro.datalog.rules` -- the AST,
- :mod:`repro.datalog.parser` -- a concrete syntax,
- :mod:`repro.datalog.unification` -- substitutions and (one-way) unification,
- :mod:`repro.datalog.analysis` -- schema extraction and the "allowed" check,
- :mod:`repro.datalog.graph` / :mod:`repro.datalog.stratify` -- dependency
  analysis and stratification,
- :mod:`repro.datalog.evaluation` -- naive and semi-naive bottom-up
  evaluation with stratified negation,
- :mod:`repro.datalog.topdown` -- a goal-directed SLDNF-flavoured prover,
- :mod:`repro.datalog.database` -- the deductive database ``D = (F, DR, IC)``.
"""

from repro.datalog.errors import (
    ArityError,
    DatalogError,
    DepthLimitExceeded,
    DomainError,
    ParseError,
    SafetyError,
    StratificationError,
    TransactionError,
    UnknownPredicateError,
)
from repro.datalog.terms import Constant, Term, Variable, const, var
from repro.datalog.rules import Atom, Literal, Rule, atom, fact, neg, pos, rule
from repro.datalog.parser import parse_atom, parse_literal, parse_program, parse_rule
from repro.datalog.database import DeductiveDatabase, Schema
from repro.datalog.evaluation import BottomUpEvaluator, EvaluationStats
from repro.datalog.stratify import Stratification, stratify
from repro.datalog.magic import MagicProgram, magic_answers, magic_rewrite
from repro.datalog.topdown import TopDownProver

__all__ = [
    "ArityError",
    "Atom",
    "BottomUpEvaluator",
    "Constant",
    "DatalogError",
    "DeductiveDatabase",
    "DepthLimitExceeded",
    "DomainError",
    "EvaluationStats",
    "Literal",
    "MagicProgram",
    "ParseError",
    "Rule",
    "SafetyError",
    "Schema",
    "Stratification",
    "StratificationError",
    "Term",
    "TopDownProver",
    "TransactionError",
    "UnknownPredicateError",
    "Variable",
    "atom",
    "const",
    "fact",
    "magic_answers",
    "magic_rewrite",
    "neg",
    "parse_atom",
    "parse_literal",
    "parse_program",
    "parse_rule",
    "pos",
    "rule",
    "stratify",
    "var",
]
