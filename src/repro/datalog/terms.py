"""Terms of the function-free first-order language of the paper (Section 2).

A term is either a :class:`Variable` or a :class:`Constant`; there are no
function symbols.  Following the paper's convention, names beginning with a
capital letter denote constants and names beginning with a lower-case letter
denote variables -- the :func:`term_from_name` helper applies that convention,
and the parser relies on it.

Both classes are immutable and hashable so they can live in sets, dict keys
and frozen rule structures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

#: Python payloads allowed inside a :class:`Constant`.
ConstantValue = Union[str, int]


@dataclass(frozen=True, slots=True)
class Variable:
    """A logical variable, e.g. ``x`` in ``P(x) <- Q(x)``."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("variable name must be non-empty")

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


@dataclass(frozen=True, slots=True)
class Constant:
    """A constant, e.g. ``Dolors`` or ``42``.

    String and integer payloads are supported; equality is payload equality,
    so ``Constant(1) != Constant("1")``.
    """

    value: ConstantValue

    def __str__(self) -> str:
        return str(self.value)

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"


Term = Union[Variable, Constant]


def var(name: str) -> Variable:
    """Build a :class:`Variable` (shorthand constructor)."""
    return Variable(name)


def const(value: ConstantValue) -> Constant:
    """Build a :class:`Constant` (shorthand constructor)."""
    return Constant(value)


def term_from_name(name: str) -> Term:
    """Interpret a bare identifier using the paper's capitalisation convention.

    Names starting with an upper-case letter (or a digit, or quoted) are
    constants; names starting with a lower-case letter or underscore are
    variables.  Integer-looking names become integer constants.
    """
    if not name:
        raise ValueError("empty term name")
    first = name[0]
    if name.lstrip("-").isdigit():
        return Constant(int(name))
    if first.isupper():
        return Constant(name)
    return Variable(name)


def is_variable(term: Term) -> bool:
    """Return True when *term* is a :class:`Variable`."""
    return isinstance(term, Variable)


def is_constant(term: Term) -> bool:
    """Return True when *term* is a :class:`Constant`."""
    return isinstance(term, Constant)
