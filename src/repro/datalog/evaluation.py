"""Bottom-up evaluation with stratified negation (naive and semi-naive).

This is the query-processing substrate the paper assumes: given a database
state, compute the extension of every derived predicate.  It is used

- to answer the "old database literal" queries of both interpretations,
- by the *naive* change-computation oracle (materialise old and new states
  and diff them), against which the upward interpreter is cross-validated,
- to evaluate transition programs directly.

The evaluator is deliberately independent of :class:`DeductiveDatabase`: any
object with ``facts_of``/``lookup`` works as the extensional store, which is
how event facts are injected when evaluating transition rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Protocol, Sequence

from repro.datalog.builtins import evaluate_builtin, is_builtin
from repro.datalog.compile_plan import (
    ENGINE_COMPILED,
    PlanStats,
    ProgramPlan,
    resolve_engine,
)
from repro.datalog.errors import ArityError, SafetyError
from repro.obs import tracer as obs
from repro.datalog.rules import Atom, Literal, Rule
from repro.datalog.stratify import Stratification, stratify
from repro.datalog.terms import Constant, Term
from repro.datalog.unification import Substitution, match_tuple, resolve

Row = tuple[Constant, ...]


class FactSource(Protocol):
    """Anything that can enumerate and pattern-match stored base facts."""

    def facts_of(self, predicate: str) -> Iterable[Row]:
        """All tuples of *predicate* (empty when none)."""

    def lookup(self, predicate: str, pattern: Sequence[Term]) -> Iterator[Row]:
        """Tuples of *predicate* compatible with *pattern*."""


class ExtensionalStore:
    """A plain dict-backed :class:`FactSource`, used for transition states.

    The first tuple stored for a predicate fixes its arity; later
    mismatched inserts and mismatched lookup patterns raise
    :class:`ArityError` (mirroring :class:`~repro.datalog.database.
    Relation`) instead of silently truncating the comparison.
    """

    def __init__(self, facts: Mapping[str, Iterable[Row]] | None = None):
        self._facts: dict[str, set[Row]] = {}
        self._arities: dict[str, int] = {}
        if facts:
            for predicate, rows in facts.items():
                for row in rows:
                    self.add(predicate, row)

    def _check_arity(self, predicate: str, length: int) -> None:
        arity = self._arities.setdefault(predicate, length)
        if length != arity:
            raise ArityError(
                f"{predicate}: tuple of length {length}, arity is {arity}")

    def add(self, predicate: str, row: Row) -> bool:
        """Insert a tuple; True when new."""
        self._check_arity(predicate, len(row))
        rows = self._facts.setdefault(predicate, set())
        if row in rows:
            return False
        rows.add(row)
        return True

    def discard(self, predicate: str, row: Row) -> bool:
        """Remove a tuple; True when present."""
        rows = self._facts.get(predicate)
        if rows is None or row not in rows:
            return False
        rows.discard(row)
        return True

    def facts_of(self, predicate: str) -> frozenset[Row]:
        """All tuples of *predicate*."""
        return frozenset(self._facts.get(predicate, ()))

    def count_of(self, predicate: str) -> int:
        """Stored tuple count (join-order size estimates, no copying)."""
        return len(self._facts.get(predicate, ()))

    def lookup(self, predicate: str, pattern: Sequence[Term]) -> Iterator[Row]:
        """Linear filtered scan (these stores are small per-transition sets)."""
        rows = self._facts.get(predicate)
        if not rows:
            return
        self._check_arity(predicate, len(pattern))
        for row in rows:
            if all(not isinstance(t, Constant) or t == v
                   for t, v in zip(pattern, row)):
                yield row

    def predicates(self) -> list[str]:
        """Predicates with at least one tuple."""
        return [p for p, rows in self._facts.items() if rows]


@dataclass
class EvaluationStats:
    """Counters exposed for the benchmark harness and the ablation studies."""

    iterations: int = 0
    rule_firings: int = 0
    facts_derived: int = 0
    literals_matched: int = 0

    def merged_with(self, other: "EvaluationStats") -> "EvaluationStats":
        """Pointwise sum (used when aggregating per-stratum stats)."""
        return EvaluationStats(
            self.iterations + other.iterations,
            self.rule_firings + other.rule_firings,
            self.facts_derived + other.facts_derived,
            self.literals_matched + other.literals_matched,
        )

    def delta_since(self, earlier: "EvaluationStats") -> "EvaluationStats":
        """Pointwise difference against an earlier snapshot of this object."""
        return EvaluationStats(
            self.iterations - earlier.iterations,
            self.rule_firings - earlier.rule_firings,
            self.facts_derived - earlier.facts_derived,
            self.literals_matched - earlier.literals_matched,
        )

    def snapshot(self) -> "EvaluationStats":
        """A frozen copy (pair with :meth:`delta_since`)."""
        return EvaluationStats(self.iterations, self.rule_firings,
                               self.facts_derived, self.literals_matched)

    def to_counters(self) -> dict[str, int]:
        """The span-counter form used by the tracing subsystem."""
        return {
            "iterations": self.iterations,
            "rule_firings": self.rule_firings,
            "facts_derived": self.facts_derived,
            "literals_matched": self.literals_matched,
        }

    def record_to(self, span: "obs.Span") -> None:
        """Add these stats to a span's counters (the shared span model)."""
        for counter, amount in self.to_counters().items():
            if amount:
                span.add(counter, amount)


@dataclass
class Materialization:
    """The computed perfect model: every derived predicate's extension."""

    derived: dict[str, frozenset[Row]]
    stats: EvaluationStats = field(default_factory=EvaluationStats)

    def extension(self, predicate: str) -> frozenset[Row]:
        """Extension of a derived predicate (empty when it derived nothing)."""
        return self.derived.get(predicate, frozenset())

    def holds(self, predicate: str, row: Row) -> bool:
        """Membership test against a derived extension."""
        return row in self.derived.get(predicate, frozenset())


class BottomUpEvaluator:
    """Evaluates a stratified program over a :class:`FactSource`.

    Parameters
    ----------
    facts:
        the extensional state (base predicates).
    rules:
        the intensional part; every head predicate is treated as derived.
    semi_naive:
        when True (default) use semi-naive (delta) iteration inside each
        recursive stratum; when False use naive fixpoint iteration.  Both
        compute the same perfect model; the difference is measured by the
        SYN6 ablation benchmark.
    engine:
        ``"compiled"`` materialises through
        :class:`~repro.datalog.compile_plan.ProgramPlan` (closure-chain
        join plans, indexed derived extensions, batched semi-naive);
        ``"interpreted"`` keeps the tuple-at-a-time AST walk and serves
        as the differential oracle.  ``None`` (default) resolves to
        compiled for semi-naive evaluation unless the
        ``REPRO_EVAL_ENGINE`` environment variable overrides it; naive
        iteration always runs interpreted (the compiled engine is
        inherently semi-naive).  Goal solving (:meth:`solve`,
        :meth:`answers`, :meth:`holds`) always runs over the
        materialised model, whichever engine produced it.
    """

    def __init__(self, facts: FactSource, rules: Sequence[Rule],
                 semi_naive: bool = True,
                 stratification: Stratification | None = None,
                 engine: str | None = None):
        self._facts = facts
        self._rules = list(rules)
        self._semi_naive = semi_naive
        self._engine = resolve_engine(engine, semi_naive)
        self._derived_predicates = {r.head.predicate for r in self._rules}
        self._stratification = stratification or stratify(self._rules)
        self._extensions: dict[str, set[Row]] | None = None
        self.stats = EvaluationStats()
        self.plan_stats = PlanStats()

    # -- public API ----------------------------------------------------------

    @property
    def engine(self) -> str:
        """The resolved evaluation engine (``"compiled"``/``"interpreted"``)."""
        return self._engine

    def materialize(self) -> Materialization:
        """Compute (and cache) the extension of every derived predicate.

        The returned :class:`Materialization` is a stable snapshot: its
        extensions are frozen and its stats are a copy taken now, not a
        live alias of :attr:`stats`.
        """
        if self._extensions is None:
            self._extensions = self._compute()
        return Materialization(
            {p: frozenset(rows) for p, rows in self._extensions.items()},
            self.stats.snapshot(),
        )

    def answers(self, query: Atom) -> list[Substitution]:
        """Distinct substitutions (over the query's variables) satisfying it."""
        seen: set[tuple] = set()
        results: list[Substitution] = []
        for bindings in self._answer_atom(query):
            key = tuple(sorted((v.name, t) for v, t in bindings.items()))
            if key not in seen:
                seen.add(key)
                results.append(bindings)
        return results

    def holds(self, literal: Literal, subst: Substitution | None = None) -> bool:
        """Truth of a ground (after *subst*) literal in the perfect model."""
        bindings = self.solve((literal,), subst)
        return next(iter(bindings), None) is not None

    def solve(self, conjunction: Sequence[Literal],
              subst: Substitution | None = None) -> Iterator[Substitution]:
        """All extensions of *subst* satisfying the conjunction.

        Literals are reordered dynamically so that negative literals run only
        once ground; a conjunction whose negatives can never become ground is
        rejected with :class:`SafetyError`.
        """
        self._ensure_materialized()
        yield from self._solve(list(conjunction), dict(subst or {}))

    def extension(self, predicate: str) -> frozenset[Row]:
        """Extension of a predicate: stored facts or computed derived rows."""
        self._ensure_materialized()
        assert self._extensions is not None
        if predicate in self._derived_predicates:
            return frozenset(self._extensions.get(predicate, ()))
        return frozenset(self._facts.facts_of(predicate))

    def apply_delta(self, predicate: str, inserted: Iterable[Row] = (),
                    deleted: Iterable[Row] = ()) -> None:
        """Adjust a derived extension in place after a known change.

        Used to *advance* a materialisation across a transaction whose
        induced events are already known (incremental maintenance), instead
        of recomputing from scratch.  The caller is responsible for the
        delta being correct; base facts are always read live from the fact
        source.  Only derived (rule-head) predicates can be patched.
        """
        if predicate not in self._derived_predicates:
            raise ValueError(
                f"apply_delta targets derived predicates only; "
                f"{predicate!r} has no rules here")
        self._ensure_materialized()
        assert self._extensions is not None
        rows = self._extensions.setdefault(predicate, set())
        rows.update(inserted)
        rows.difference_update(deleted)

    @property
    def materialized(self) -> bool:
        """Whether the derived extensions have been computed already."""
        return self._extensions is not None

    def live_extensions(self) -> Mapping[str, set[Row]]:
        """The internal derived-extensions mapping, materialising on demand.

        The returned mapping stays *live*: :meth:`apply_delta` patches are
        visible through it, which is what lets cached fact-source views
        (:class:`repro.interpretations.upward.OldStateView`) survive an
        advance without re-snapshotting.  Treat it as read-only.
        """
        self._ensure_materialized()
        assert self._extensions is not None
        return self._extensions

    # -- internals -------------------------------------------------------------

    def _ensure_materialized(self) -> None:
        if self._extensions is None:
            self._extensions = self._compute()

    def _answer_atom(self, query: Atom) -> Iterator[Substitution]:
        variables = set(query.variables())
        for bindings in self.solve((Literal(query, True),)):
            yield {v: t for v, t in bindings.items() if v in variables}

    def _rows_of(self, predicate: str,
                 extensions: Mapping[str, set[Row]]) -> Iterable[Row]:
        if predicate in self._derived_predicates:
            return extensions.get(predicate, ())
        return self._facts.facts_of(predicate)

    def _match_positive(self, literal: Literal, subst: Substitution,
                        extensions: Mapping[str, set[Row]],
                        restrict_to: Iterable[Row] | None = None) -> Iterator[Substitution]:
        pattern = tuple(resolve(t, subst) for t in literal.args)
        if restrict_to is not None:
            rows: Iterable[Row] = restrict_to
        elif literal.predicate in self._derived_predicates:
            rows = extensions.get(literal.predicate, ())
        else:
            rows = self._facts.lookup(literal.predicate, pattern)
        for row in rows:
            self.stats.literals_matched += 1
            bindings = match_tuple(pattern, row, subst)
            if bindings is not None:
                yield bindings if isinstance(bindings, dict) else dict(bindings)

    def _literal_ground(self, literal: Literal, subst: Substitution) -> bool:
        return all(isinstance(resolve(t, subst), Constant) for t in literal.args)

    def _solve(self, pending: list[Literal], subst: dict,
               extensions: Mapping[str, set[Row]] | None = None,
               delta_literal: Literal | None = None,
               delta_rows: Iterable[Row] | None = None) -> Iterator[Substitution]:
        """Backtracking join over *pending*, negatives delayed until ground."""
        if extensions is None:
            assert self._extensions is not None
            extensions = self._extensions
        if not pending:
            yield dict(subst)
            return
        # Choose the next literal: a ground one if available (cheap test),
        # otherwise the first positive non-built-in literal; never a
        # non-ground negative or a non-ground built-in (they only test).
        choice = None
        for index, literal in enumerate(pending):
            if self._literal_ground(literal, subst):
                choice = index
                break
        if choice is None:
            for index, literal in enumerate(pending):
                if literal.positive and not is_builtin(literal.predicate):
                    choice = index
                    break
        if choice is None:
            unresolved = " & ".join(str(lit) for lit in pending)
            raise SafetyError(
                f"cannot evaluate non-ground negative or built-in literals: "
                f"{unresolved}"
            )
        literal = pending[choice]
        rest = pending[:choice] + pending[choice + 1:]
        if is_builtin(literal.predicate):
            row = tuple(resolve(t, subst) for t in literal.args)
            if evaluate_builtin(literal.predicate, row) == literal.positive:
                yield from self._solve(rest, subst, extensions,
                                       delta_literal, delta_rows)
            return
        if literal.positive:
            restrict = delta_rows if literal is delta_literal else None
            for bindings in self._match_positive(literal, subst, extensions, restrict):
                yield from self._solve(rest, bindings, extensions,
                                       delta_literal, delta_rows)
        else:
            row = tuple(resolve(t, subst) for t in literal.args)
            if row not in self._rows_of(literal.predicate, extensions):
                yield from self._solve(rest, subst, extensions,
                                       delta_literal, delta_rows)

    def _fire_rule(self, r: Rule, extensions: dict[str, set[Row]],
                   delta_literal: Literal | None = None,
                   delta_rows: set[Row] | None = None) -> set[Row]:
        """All head rows derivable from one rule (optionally delta-restricted)."""
        self.stats.rule_firings += 1
        derived: set[Row] = set()
        for bindings in self._solve(list(r.body), {}, extensions,
                                    delta_literal, delta_rows):
            head_row = tuple(resolve(t, bindings) for t in r.head.args)
            if not all(isinstance(t, Constant) for t in head_row):
                raise SafetyError(f"derived a non-ground head from rule: {r}")
            derived.add(head_row)  # type: ignore[arg-type]
        return derived

    def _compute(self) -> dict[str, set[Row]]:
        """Stratum-by-stratum fixpoint computation of the perfect model."""
        extensions: dict[str, set[Row]] = {p: set() for p in self._derived_predicates}
        compiled = self._engine == ENGINE_COMPILED
        plan = None
        if compiled:
            # The plan shares (and indexes) the very extension sets above,
            # so live_extensions/apply_delta keep working unchanged.
            plan = ProgramPlan(self._rules, self._facts, extensions,
                               self.stats, self.plan_stats)
        if compiled:
            mode = "compiled"
        elif self._semi_naive:
            mode = "semi-naive"
        else:
            mode = "naive"
        with obs.span("eval.materialize") as root:
            for index, stratum in enumerate(self._stratification.strata):
                # Stratum 0 is normally rule-free (base predicates), but ground
                # bodiless rules -- e.g. magic seeds -- land there and must fire.
                stratum_rules = [r for r in self._rules
                                 if r.head.predicate in stratum]
                if not stratum_rules:
                    continue
                with obs.span("eval.stratum") as span:
                    traced = obs.enabled()
                    if traced:
                        span.set(index=index, mode=mode,
                                 predicates=sorted(
                                     stratum & self._derived_predicates))
                        span.add("rules", len(stratum_rules))
                        before = self.stats.snapshot()
                    if compiled:
                        assert plan is not None
                        plan.evaluate_stratum(stratum, [
                            i for i, r in enumerate(self._rules)
                            if r.head.predicate in stratum])
                    elif self._semi_naive:
                        self._evaluate_stratum_semi_naive(
                            stratum_rules, stratum, extensions)
                    else:
                        self._evaluate_stratum_naive(stratum_rules, extensions)
                    if traced:
                        self.stats.delta_since(before).record_to(span)
                        span.add("rows", sum(
                            len(extensions.get(p, ()))
                            for p in stratum & self._derived_predicates))
            if obs.enabled():
                root.set(strata=len(self._stratification.strata),
                         rules=len(self._rules), engine=self._engine)
                self.stats.record_to(root)
                for counter, amount in self.plan_stats.to_counters().items():
                    if amount:
                        root.add(counter, amount)
        return extensions

    def _evaluate_stratum_naive(self, stratum_rules: list[Rule],
                                extensions: dict[str, set[Row]]) -> None:
        changed = True
        while changed:
            self.stats.iterations += 1
            changed = False
            for r in stratum_rules:
                for row in self._fire_rule(r, extensions):
                    if row not in extensions[r.head.predicate]:
                        extensions[r.head.predicate].add(row)
                        self.stats.facts_derived += 1
                        changed = True

    def _evaluate_stratum_semi_naive(self, stratum_rules: list[Rule],
                                     stratum: frozenset[str],
                                     extensions: dict[str, set[Row]]) -> None:
        # Round 0: fire every rule against the current (lower-strata) state.
        delta: dict[str, set[Row]] = {}
        self.stats.iterations += 1
        for r in stratum_rules:
            for row in self._fire_rule(r, extensions):
                if row not in extensions[r.head.predicate]:
                    extensions[r.head.predicate].add(row)
                    delta.setdefault(r.head.predicate, set()).add(row)
                    self.stats.facts_derived += 1
        recursive_rules = [
            r for r in stratum_rules
            if any(lit.positive and lit.predicate in stratum for lit in r.body)
        ]
        while delta:
            self.stats.iterations += 1
            if obs.enabled():
                delta_rows = sum(len(rows) for rows in delta.values())
                obs.add("delta_rounds")
                obs.add("delta_rows", delta_rows)
            next_delta: dict[str, set[Row]] = {}
            for r in recursive_rules:
                for literal in r.body:
                    if not literal.positive or literal.predicate not in stratum:
                        continue
                    delta_rows = delta.get(literal.predicate)
                    if not delta_rows:
                        continue
                    for row in self._fire_rule(r, extensions, literal, delta_rows):
                        if row not in extensions[r.head.predicate]:
                            extensions[r.head.predicate].add(row)
                            next_delta.setdefault(r.head.predicate, set()).add(row)
                            self.stats.facts_derived += 1
            delta = next_delta
