"""Substitutions, matching and unification over function-free terms.

Because the language has no function symbols, unification degenerates to
variable binding with union-find-free occurs-check-free simplicity; we keep
full (two-way) unification for generality and a faster one-way :func:`match`
for the common evaluate-body-against-ground-fact case.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Mapping, Optional

from repro.datalog.rules import Atom, Literal, Rule
from repro.datalog.terms import Constant, Term, Variable

#: A substitution maps variables to terms.  Immutability is by convention:
#: all functions here return fresh dicts instead of mutating inputs.
Substitution = Mapping[Variable, Term]

EMPTY_SUBSTITUTION: Substitution = {}

_fresh_counter = itertools.count(1)


def resolve(term: Term, subst: Substitution) -> Term:
    """Follow variable bindings until a constant or an unbound variable."""
    while isinstance(term, Variable) and term in subst:
        term = subst[term]
    return term


def substitute_term(term: Term, subst: Substitution) -> Term:
    """Apply *subst* to a single term."""
    return resolve(term, subst)


def substitute_atom(target: Atom, subst: Substitution) -> Atom:
    """Apply *subst* to every argument of an atom."""
    if not subst or not target.args:
        return target
    return Atom(target.predicate, tuple(resolve(t, subst) for t in target.args))


def substitute_literal(literal: Literal, subst: Substitution) -> Literal:
    """Apply *subst* to a literal."""
    return Literal(substitute_atom(literal.atom, subst), literal.positive)


def substitute_rule(r: Rule, subst: Substitution) -> Rule:
    """Apply *subst* to a whole rule."""
    return Rule(
        substitute_atom(r.head, subst),
        tuple(substitute_literal(lit, subst) for lit in r.body),
        label=r.label,
    )


def unify_terms(left: Term, right: Term, subst: Substitution) -> Optional[Substitution]:
    """Unify two terms under an existing substitution.

    Returns the extended substitution, or None when unification fails.
    """
    left = resolve(left, subst)
    right = resolve(right, subst)
    if left == right:
        return subst
    if isinstance(left, Variable):
        extended = dict(subst)
        extended[left] = right
        return extended
    if isinstance(right, Variable):
        extended = dict(subst)
        extended[right] = left
        return extended
    return None  # two distinct constants


def unify_atoms(left: Atom, right: Atom,
                subst: Substitution = EMPTY_SUBSTITUTION) -> Optional[Substitution]:
    """Unify two atoms; they must share predicate and arity."""
    if left.predicate != right.predicate or left.arity != right.arity:
        return None
    current: Optional[Substitution] = subst
    for l_term, r_term in zip(left.args, right.args):
        current = unify_terms(l_term, r_term, current)
        if current is None:
            return None
    return current


def match_atom(pattern: Atom, ground: Atom,
               subst: Substitution = EMPTY_SUBSTITUTION) -> Optional[Substitution]:
    """One-way match: bind *pattern*'s variables against a ground atom.

    Faster than :func:`unify_atoms` and the common case during bottom-up
    evaluation, where stored facts are always ground.
    """
    if pattern.predicate != ground.predicate or pattern.arity != ground.arity:
        return None
    bindings = dict(subst)
    for p_term, g_term in zip(pattern.args, ground.args):
        p_term = resolve(p_term, bindings)
        if isinstance(p_term, Variable):
            bindings[p_term] = g_term
        elif p_term != g_term:
            return None
    return bindings


def match_tuple(pattern: tuple[Term, ...], row: tuple[Constant, ...],
                subst: Substitution) -> Optional[Substitution]:
    """Match an argument pattern against a stored tuple of constants."""
    bindings: Optional[dict] = None
    for p_term, value in zip(pattern, row):
        p_term = resolve(p_term, bindings if bindings is not None else subst)
        if isinstance(p_term, Variable):
            if bindings is None:
                bindings = dict(subst)
            bindings[p_term] = value
        elif p_term != value:
            return None
    return bindings if bindings is not None else subst


def fresh_variable(stem: str = "v") -> Variable:
    """A globally fresh variable (never collides with parsed names)."""
    return Variable(f"{stem}#{next(_fresh_counter)}")


def rename_apart(r: Rule) -> Rule:
    """Rename every variable of a rule to a fresh one (standardising apart)."""
    renaming: dict[Variable, Term] = {v: fresh_variable(v.name.split("#")[0])
                                      for v in r.variables()}
    return substitute_rule(r, renaming)


def ground_atom(target: Atom, subst: Substitution) -> Atom:
    """Apply *subst* and assert the result is ground."""
    result = substitute_atom(target, subst)
    if not result.is_ground():
        raise ValueError(f"atom not ground after substitution: {result}")
    return result


def restrict(subst: Substitution, variables: Iterable[Variable]) -> dict[Variable, Term]:
    """Project a substitution onto the given variables, fully resolving each."""
    return {v: resolve(v, subst) for v in variables if v in subst}


def compose(outer: Substitution, inner: Substitution) -> dict[Variable, Term]:
    """Compose substitutions: applying the result is inner-then-outer."""
    composed: dict[Variable, Term] = {
        v: substitute_term(t, outer) for v, t in inner.items()
    }
    for v, t in outer.items():
        composed.setdefault(v, t)
    return composed
