"""Atoms, literals, rules and facts (Section 2 of the paper).

The paper's objects map onto these classes as follows:

- an *atom* ``P(t1, ..., tm)`` is an :class:`Atom`;
- a *literal* (atom or negated atom) is a :class:`Literal`;
- a *deductive rule* ``P(t) <- L1 & ... & Ln`` is a :class:`Rule` with a
  non-empty body;
- a *fact* is a :class:`Rule` with an empty body and a ground head;
- an *integrity rule* ``Ic1 <- L1 & ... & Ln`` is an ordinary :class:`Rule`
  whose head predicate carries inconsistency semantics (see
  :mod:`repro.datalog.database`).

Everything is immutable and hashable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from repro.datalog.terms import Constant, Term, Variable


@dataclass(frozen=True, slots=True)
class Atom:
    """A predicate applied to terms: ``P(t1, ..., tm)`` (``m >= 0``)."""

    predicate: str
    args: tuple[Term, ...] = ()

    def __post_init__(self) -> None:
        if not self.predicate:
            raise ValueError("predicate name must be non-empty")
        if not isinstance(self.args, tuple):
            object.__setattr__(self, "args", tuple(self.args))

    @property
    def arity(self) -> int:
        """Number of argument positions."""
        return len(self.args)

    def is_ground(self) -> bool:
        """True when every argument is a constant."""
        return all(isinstance(t, Constant) for t in self.args)

    def variables(self) -> Iterator[Variable]:
        """Yield each variable occurrence (with repetitions)."""
        for term in self.args:
            if isinstance(term, Variable):
                yield term

    def constants(self) -> Iterator[Constant]:
        """Yield each constant occurrence (with repetitions)."""
        for term in self.args:
            if isinstance(term, Constant):
                yield term

    def __str__(self) -> str:
        if not self.args:
            return self.predicate
        return f"{self.predicate}({', '.join(str(t) for t in self.args)})"


@dataclass(frozen=True, slots=True)
class Literal:
    """A positive or negative occurrence of an atom in a rule body."""

    atom: Atom
    positive: bool = True

    @property
    def predicate(self) -> str:
        """Predicate symbol of the underlying atom."""
        return self.atom.predicate

    @property
    def args(self) -> tuple[Term, ...]:
        """Arguments of the underlying atom."""
        return self.atom.args

    def negate(self) -> "Literal":
        """Return the complementary literal."""
        return Literal(self.atom, not self.positive)

    def is_ground(self) -> bool:
        """True when the underlying atom is ground."""
        return self.atom.is_ground()

    def variables(self) -> Iterator[Variable]:
        """Yield each variable occurrence of the underlying atom."""
        return self.atom.variables()

    def __str__(self) -> str:
        return str(self.atom) if self.positive else f"not {self.atom}"


@dataclass(frozen=True, slots=True)
class Rule:
    """A deductive rule ``head <- body``; a fact when the body is empty."""

    head: Atom
    body: tuple[Literal, ...] = ()
    #: Optional provenance label (e.g. "transition", "event"); ignored by
    #: equality so compiled rules compare structurally.
    label: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.body, tuple):
            object.__setattr__(self, "body", tuple(self.body))

    def is_fact(self) -> bool:
        """True for a bodiless rule with a ground head (a stored fact)."""
        return not self.body and self.head.is_ground()

    def variables(self) -> set[Variable]:
        """All variables occurring anywhere in the rule."""
        found = set(self.head.variables())
        for literal in self.body:
            found.update(literal.variables())
        return found

    def constants(self) -> set[Constant]:
        """All constants occurring anywhere in the rule."""
        found = set(self.head.constants())
        for literal in self.body:
            found.update(literal.atom.constants())
        return found

    def positive_body(self) -> tuple[Literal, ...]:
        """The positive conditions of the rule."""
        return tuple(lit for lit in self.body if lit.positive)

    def negative_body(self) -> tuple[Literal, ...]:
        """The negative conditions of the rule."""
        return tuple(lit for lit in self.body if not lit.positive)

    def predicates(self) -> set[str]:
        """Every predicate symbol occurring in the rule."""
        return {self.head.predicate} | {lit.predicate for lit in self.body}

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        conditions = " & ".join(str(lit) for lit in self.body)
        return f"{self.head} <- {conditions}."


# ---------------------------------------------------------------------------
# Shorthand constructors.  They keep test and example code close to the
# notation of the paper.
# ---------------------------------------------------------------------------


def atom(predicate: str, *args: Term | str | int) -> Atom:
    """Build an atom, coercing bare strings/ints to constants.

    Strings are interpreted with the paper's capitalisation convention:
    ``atom("P", "x")`` has a variable argument, ``atom("P", "A")`` a constant
    one.  Pass explicit :class:`Term` objects to override.
    """
    from repro.datalog.terms import term_from_name

    coerced: list[Term] = []
    for arg in args:
        if isinstance(arg, (Variable, Constant)):
            coerced.append(arg)
        elif isinstance(arg, int):
            coerced.append(Constant(arg))
        else:
            coerced.append(term_from_name(arg))
    return Atom(predicate, tuple(coerced))


def pos(predicate: str, *args: Term | str | int) -> Literal:
    """Positive literal shorthand."""
    return Literal(atom(predicate, *args), True)


def neg(predicate: str, *args: Term | str | int) -> Literal:
    """Negative literal shorthand."""
    return Literal(atom(predicate, *args), False)


def rule(head: Atom | Literal, body: Iterable[Literal] = ()) -> Rule:
    """Build a rule from a head atom (a positive literal is unwrapped)."""
    if isinstance(head, Literal):
        if not head.positive:
            raise ValueError("a rule head must be a positive atom")
        head = head.atom
    return Rule(head, tuple(body))


def fact(predicate: str, *args: Term | str | int) -> Rule:
    """Build a ground fact; raises if any argument is a variable."""
    head = atom(predicate, *args)
    if not head.is_ground():
        raise ValueError(f"fact must be ground: {head}")
    return Rule(head, ())


def rules_by_predicate(rules: Iterable[Rule]) -> Mapping[str, tuple[Rule, ...]]:
    """Group rules by head predicate, preserving source order."""
    grouped: dict[str, list[Rule]] = {}
    for r in rules:
        grouped.setdefault(r.head.predicate, []).append(r)
    return {name: tuple(group) for name, group in grouped.items()}


def format_program(rules: Sequence[Rule]) -> str:
    """Render rules one per line in the concrete syntax of the parser."""
    return "\n".join(str(r) for r in rules)
