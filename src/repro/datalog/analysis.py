"""Schema extraction and static checks (Section 2 of the paper).

Three facts about a program are established here:

1. every predicate has one consistent arity (:func:`check_arities`);
2. predicates partition into **base** (never in a rule head) and **derived**
   (only defined by rules) -- the paper requires this partition and notes
   every database can be put in this form [BR86];
3. every rule is **allowed**: each of its variables occurs in a positive
   body condition (:func:`check_allowed`).  Facts must therefore be ground,
   and a derived predicate's head variables must be bound by positive
   conditions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.datalog.builtins import builtin_arity, is_builtin
from repro.datalog.errors import ArityError, SafetyError
from repro.datalog.parser import IC_PREFIX
from repro.datalog.rules import Rule


@dataclass(frozen=True)
class PredicateInfo:
    """Static information about one predicate symbol."""

    name: str
    arity: int
    is_base: bool

    @property
    def is_derived(self) -> bool:
        """Derived (view) predicates are exactly the non-base ones."""
        return not self.is_base

    @property
    def is_inconsistency(self) -> bool:
        """True for ``Ic``/``IcN`` integrity predicates."""
        return is_inconsistency_predicate(self.name)


def is_inconsistency_predicate(name: str) -> bool:
    """True for the global ``Ic`` or a numbered ``IcN`` predicate."""
    if name == IC_PREFIX:
        return True
    return name.startswith(IC_PREFIX) and name[len(IC_PREFIX):].isdigit()


def check_arities(rules: Iterable[Rule],
                  known: Mapping[str, int] | None = None) -> dict[str, int]:
    """Verify consistent arities across all rule heads and bodies.

    Returns the full predicate -> arity map (including *known* seeds).
    """
    arities: dict[str, int] = dict(known or {})

    def record(predicate: str, arity: int) -> None:
        seen = arities.setdefault(predicate, arity)
        if seen != arity:
            raise ArityError(
                f"predicate {predicate} used with arity {arity} and {seen}"
            )

    for r in rules:
        if is_builtin(r.head.predicate):
            raise SafetyError(
                f"built-in predicate {r.head.predicate} cannot be defined "
                f"by a rule: {r}"
            )
        record(r.head.predicate, r.head.arity)
        for literal in r.body:
            if is_builtin(literal.predicate):
                if literal.atom.arity != builtin_arity(literal.predicate):
                    raise ArityError(
                        f"built-in {literal.predicate} used with arity "
                        f"{literal.atom.arity}"
                    )
                continue
            record(literal.predicate, literal.atom.arity)
    return arities


def check_allowed(r: Rule) -> None:
    """Raise :class:`SafetyError` unless *r* is allowed (range-restricted).

    Built-in literals never bind: like negative conditions, their variables
    must occur in an ordinary positive condition.
    """
    bound = set()
    for literal in r.body:
        if literal.positive and not is_builtin(literal.predicate):
            bound.update(literal.variables())
    unbound = {v for v in r.variables() if v not in bound}
    if unbound:
        names = ", ".join(sorted(v.name for v in unbound))
        raise SafetyError(
            f"rule is not allowed; variables not bound by a positive "
            f"condition: {names} in {r}"
        )


@dataclass
class SchemaAnalysis:
    """Result of :func:`analyse_program`."""

    predicates: dict[str, PredicateInfo] = field(default_factory=dict)
    base: set[str] = field(default_factory=set)
    derived: set[str] = field(default_factory=set)

    def info(self, name: str) -> PredicateInfo:
        """Look up a predicate (KeyError when unknown)."""
        return self.predicates[name]


def analyse_program(rules: Sequence[Rule],
                    declared_base: Iterable[str] = (),
                    known_arities: Mapping[str, int] | None = None) -> SchemaAnalysis:
    """Classify predicates and run every static check.

    A predicate is derived when it appears in the head of at least one
    non-fact rule; every other predicate is base.  ``declared_base`` lets a
    caller pre-declare base predicates (e.g. ones with no facts yet) -- a
    rule head on a declared-base predicate raises :class:`SafetyError`,
    because the paper's partition forbids base predicates in the intensional
    part.
    """
    arities = check_arities(rules, known_arities)
    declared = set(declared_base)
    derived: set[str] = set()
    for r in rules:
        if r.body or not r.head.is_ground():
            derived.add(r.head.predicate)
        check_allowed(r)
    conflict = derived & declared
    if conflict:
        names = ", ".join(sorted(conflict))
        raise SafetyError(f"declared base predicates defined by rules: {names}")
    analysis = SchemaAnalysis()
    for name, arity in arities.items():
        is_base = name not in derived
        analysis.predicates[name] = PredicateInfo(name, arity, is_base)
        (analysis.base if is_base else analysis.derived).add(name)
    for name in declared:
        if name not in analysis.predicates:
            info = PredicateInfo(name, 0, True)
            analysis.predicates[name] = info
            analysis.base.add(name)
    return analysis
