"""Predicate dependency analysis and stratification.

The paper assumes a semantics under which the event rules are well defined;
we use the standard perfect-model semantics of stratified programs.  A
program is stratifiable when no predicate depends on itself through
negation.  The same machinery also answers the structural questions the
event-rule compiler needs: which predicates are recursive, and in what order
strata must be evaluated bottom-up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.datalog.errors import StratificationError
from repro.datalog.graph import Digraph
from repro.datalog.rules import Rule

#: Edge labels in the dependency graph.
POSITIVE = "+"
NEGATIVE = "-"


def dependency_graph(rules: Iterable[Rule]) -> Digraph:
    """Graph with an edge body-predicate -> head-predicate per condition.

    Edges are labelled ``"+"`` (positive condition) or ``"-"`` (negative
    condition); a pair of predicates can carry both labels.
    """
    graph: Digraph = Digraph()
    for r in rules:
        graph.add_node(r.head.predicate)
        for literal in r.body:
            graph.add_edge(
                literal.predicate,
                r.head.predicate,
                POSITIVE if literal.positive else NEGATIVE,
            )
    return graph


@dataclass
class Stratification:
    """A stratification: predicate -> stratum number (base predicates = 0)."""

    stratum_of: dict[str, int] = field(default_factory=dict)
    #: Predicates grouped by stratum, ascending.
    strata: list[frozenset[str]] = field(default_factory=list)
    #: Predicates involved in (positive) recursion.
    recursive: frozenset[str] = frozenset()

    def stratum(self, predicate: str) -> int:
        """Stratum of a predicate (unknown predicates are stratum 0 / base)."""
        return self.stratum_of.get(predicate, 0)

    @property
    def depth(self) -> int:
        """Number of non-base strata."""
        return len(self.strata) - 1 if self.strata else 0


def stratify(rules: Sequence[Rule], base_predicates: Iterable[str] = ()) -> Stratification:
    """Compute a stratification or raise :class:`StratificationError`.

    Base predicates (and any predicate not defined by a rule) sit in stratum
    0.  A derived predicate's stratum is at least 1, at least the stratum of
    each positive dependency, and strictly greater than the stratum of each
    negative dependency.  Strata are computed on the condensation of the
    dependency graph; a negative edge inside one strongly connected component
    means negation through recursion and is rejected.
    """
    graph = dependency_graph(rules)
    defined = {r.head.predicate for r in rules if r.body or not r.head.is_ground()}
    components = graph.strongly_connected_components()
    component_index: dict[str, int] = {}
    for position, component in enumerate(components):
        for predicate in component:
            component_index[predicate] = position

    recursive: set[str] = set()
    for component in components:
        if len(component) > 1:
            recursive.update(component)
        else:
            (predicate,) = component
            if graph.has_edge(predicate, predicate):
                recursive.add(predicate)

    # Group the incoming dependencies of each component, rejecting negative
    # edges that stay inside a component.
    incoming: dict[int, set[tuple[int, str]]] = {i: set() for i in range(len(components))}
    for r in rules:
        head = r.head.predicate
        head_component = component_index[head]
        for literal in r.body:
            label = POSITIVE if literal.positive else NEGATIVE
            source_component = component_index[literal.predicate]
            if source_component == head_component:
                if label == NEGATIVE:
                    raise StratificationError(
                        f"predicate {head} depends negatively on "
                        f"{literal.predicate} within a recursive component; "
                        f"program is not stratifiable"
                    )
                continue
            incoming[head_component].add((source_component, label))

    # Tarjan emits a component only after every component it can reach, i.e.
    # dependents come out before their dependencies (edges here point
    # dependency -> dependent).  Walking the list in reverse therefore visits
    # dependencies first, so one pass computes all levels.
    component_level: dict[int, int] = {}
    for position in reversed(range(len(components))):
        component = components[position]
        level = 1 if any(p in defined for p in component) else 0
        for source_component, label in incoming[position]:
            source_level = component_level[source_component]
            required = source_level + 1 if label == NEGATIVE else source_level
            level = max(level, required)
        component_level[position] = level

    stratum_of: dict[str, int] = {}
    for position, component in enumerate(components):
        for predicate in component:
            stratum_of[predicate] = component_level[position]
    for predicate in base_predicates:
        stratum_of.setdefault(predicate, 0)

    highest = max(stratum_of.values(), default=0)
    strata = [frozenset(p for p, s in stratum_of.items() if s == level)
              for level in range(highest + 1)]
    return Stratification(stratum_of, strata, frozenset(recursive))
