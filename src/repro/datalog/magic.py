"""Magic-sets rewriting: goal-directed bottom-up query evaluation.

Part of the substrate the paper takes from the deductive-database canon
([Ull88]): answering a *specific* query by bottom-up evaluation of the full
program wastes work on irrelevant facts.  The magic-sets transformation
specialises the program to the query's binding pattern so that bottom-up
evaluation only derives tuples relevant to it -- the bottom-up counterpart
of top-down goal direction.

The implementation covers positive Datalog (negated conditions are allowed
only on *base* predicates, where they act as filters and need no magic);
queries over programs that negate derived predicates are rejected --
evaluate those with the plain :class:`~repro.datalog.evaluation.
BottomUpEvaluator`.

Sketch (supplementary-free, left-to-right SIPS):

- every derived predicate reached from the query gets *adorned* versions
  ``P@bf...`` describing which arguments are bound;
- each adorned rule is guarded by a magic literal ``magic$P@a(bound args)``;
- for each derived body literal a *magic rule* passes the bindings down;
- the query's constants become the magic *seed* fact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.datalog.builtins import is_builtin
from repro.datalog.errors import ArityError, SafetyError
from repro.datalog.evaluation import BottomUpEvaluator, FactSource
from repro.datalog.rules import Atom, Literal, Rule
from repro.datalog.terms import Constant, Term, Variable
from repro.datalog.unification import match_tuple

MAGIC_PREFIX = "magic$"
ADORN_SEPARATOR = "@"

Row = tuple[Constant, ...]


def _adornment_of(args: Sequence[Term], bound_vars: set[Variable]) -> str:
    return "".join(
        "b" if isinstance(t, Constant) or t in bound_vars else "f"
        for t in args
    )


def _adorned_name(predicate: str, adornment: str) -> str:
    return f"{predicate}{ADORN_SEPARATOR}{adornment}"


def _bound_args(args: Sequence[Term], adornment: str) -> tuple[Term, ...]:
    return tuple(t for t, a in zip(args, adornment) if a == "b")


@dataclass
class MagicProgram:
    """The rewritten program plus the seed and the answer predicate."""

    rules: tuple[Rule, ...]
    seed_predicate: str
    seed_row: Row
    answer_predicate: str
    #: Adorned predicates generated (diagnostics / tests).
    adorned: frozenset[str] = frozenset()

    def seed_source(self, base: FactSource) -> "_SeededSource":
        """A fact source layering the magic seed over *base*."""
        return _SeededSource(base, self.seed_predicate, self.seed_row)


class _SeededSource:
    """A fact source with one extra (seed) fact."""

    def __init__(self, base: FactSource, predicate: str, row: Row):
        self._base = base
        self._predicate = predicate
        self._row = row

    def facts_of(self, predicate: str):
        if predicate == self._predicate:
            return frozenset({self._row})
        return self._base.facts_of(predicate)

    def count_of(self, predicate: str) -> int:
        if predicate == self._predicate:
            return 1
        counter = getattr(self._base, "count_of", None)
        if counter is not None:
            return counter(predicate)
        return len(self._base.facts_of(predicate))

    def lookup(self, predicate: str, pattern: Sequence[Term]):
        if predicate == self._predicate:
            if len(pattern) != len(self._row):
                raise ArityError(
                    f"{predicate}: pattern of length {len(pattern)}, "
                    f"arity is {len(self._row)}")
            if all(not isinstance(t, Constant) or t == v
                   for t, v in zip(pattern, self._row)):
                return iter([self._row])
            return iter(())
        return self._base.lookup(predicate, pattern)


def magic_rewrite(rules: Sequence[Rule], query: Atom) -> MagicProgram:
    """Rewrite *rules* for goal-directed evaluation of *query*.

    Raises :class:`SafetyError` when a reachable rule negates a derived
    predicate (out of this transformation's fragment).
    """
    derived = {r.head.predicate for r in rules}
    rules_of: dict[str, list[Rule]] = {}
    for rule in rules:
        rules_of.setdefault(rule.head.predicate, []).append(rule)

    query_adornment = _adornment_of(query.args, set())
    pending: list[tuple[str, str]] = [(query.predicate, query_adornment)]
    seen: set[tuple[str, str]] = set()
    rewritten: list[Rule] = []

    while pending:
        predicate, adornment = pending.pop()
        if (predicate, adornment) in seen:
            continue
        seen.add((predicate, adornment))
        magic_name = MAGIC_PREFIX + _adorned_name(predicate, adornment)
        for rule in rules_of.get(predicate, ()):
            bound_head_vars = {
                t for t, a in zip(rule.head.args, adornment)
                if a == "b" and isinstance(t, Variable)
            }
            magic_guard = Literal(
                Atom(magic_name, _bound_args(rule.head.args, adornment)), True)
            new_body: list[Literal] = [magic_guard]
            bound_vars = set(bound_head_vars)
            for literal in rule.body:
                if literal.predicate in derived:
                    if not literal.positive:
                        raise SafetyError(
                            f"magic-sets rewriting does not cover negation "
                            f"on derived predicates: {literal} in {rule}"
                        )
                    body_adornment = _adornment_of(literal.args, bound_vars)
                    # Magic rule: pass the bindings down to the subgoal.
                    sub_magic = Atom(
                        MAGIC_PREFIX + _adorned_name(literal.predicate,
                                                     body_adornment),
                        _bound_args(literal.args, body_adornment))
                    rewritten.append(Rule(sub_magic, tuple(new_body),
                                          label="magic"))
                    pending.append((literal.predicate, body_adornment))
                    new_body.append(Literal(
                        Atom(_adorned_name(literal.predicate, body_adornment),
                             literal.args),
                        True))
                    bound_vars.update(literal.variables())
                else:
                    new_body.append(literal)
                    if literal.positive and not is_builtin(literal.predicate):
                        bound_vars.update(literal.variables())
            rewritten.append(Rule(
                Atom(_adorned_name(predicate, adornment), rule.head.args),
                tuple(new_body),
                label="adorned"))

    seed_predicate = MAGIC_PREFIX + _adorned_name(query.predicate,
                                                  query_adornment)
    seed_row = tuple(t for t in query.args if isinstance(t, Constant))
    # The seed is emitted as a bodiless rule: in the recursive case the
    # magic predicate has rules of its own, making it *derived* -- a seed
    # fact in the extensional source would be shadowed by the evaluator.
    rewritten.append(Rule(Atom(seed_predicate, seed_row), (), label="seed"))
    return MagicProgram(
        rules=tuple(rewritten),
        seed_predicate=seed_predicate,
        seed_row=seed_row,  # type: ignore[arg-type]
        answer_predicate=_adorned_name(query.predicate, query_adornment),
        adorned=frozenset(_adorned_name(p, a) for p, a in seen),
    )


def magic_answers(facts: FactSource, rules: Sequence[Rule], query: Atom,
                  stats_out: list | None = None,
                  engine: str | None = None) -> set[Row]:
    """Answer *query* goal-directedly via magic rewriting.

    Returns the full rows of the query predicate matching the query atom
    -- its constants *and* its repeated-variable equalities (``Self(x, x)``
    only admits rows whose two columns coincide; the adorned program keeps
    the rules' distinct variables, so this filter carries the query's
    equality constraints).  ``stats_out``, if given, receives the
    evaluator's :class:`~repro.datalog.evaluation.EvaluationStats`;
    ``engine`` selects the evaluation engine (compiled/interpreted) for
    the rewritten program.
    """
    program = magic_rewrite(rules, query)
    evaluator = BottomUpEvaluator(program.seed_source(facts),
                                  list(program.rules), engine=engine)
    pattern = tuple(query.args)
    answers = set()
    for row in evaluator.extension(program.answer_predicate):
        if len(row) != len(pattern):
            raise ArityError(
                f"{program.answer_predicate}: answer row of length "
                f"{len(row)}, query arity is {len(pattern)}")
        if match_tuple(pattern, row, {}) is not None:
            answers.add(row)
    if stats_out is not None:
        stats_out.append(evaluator.stats)
    return answers
