"""Built-in (rigid) comparison predicates.

Views frequently need comparisons -- ``Classmate(x, y) ← Enrolled(x, c) ∧
Enrolled(y, c) ∧ Neq(x, y)`` -- which the paper's function-free language
can express only through auxiliary base relations.  This module adds them
as *rigid* predicates: evaluated procedurally, never stored, and -- the
property that matters to the event-rule framework -- **identical in the old
and the new state**.  Rigidity means the transition-rule substitution
(3)/(4) leaves them untouched: no ``ιNeq``/``δNeq`` events exist, so each
built-in literal contributes exactly one alternative instead of two,
halving the 2^k disjunct blow-up per occurrence.

Built-ins behave like negative literals for safety: their arguments must be
bound by ordinary positive conditions.

==========  =====  =========================================
name        arity  meaning (constants compare by payload)
==========  =====  =========================================
``Eq``      2      equality
``Neq``     2      inequality
``Lt``      2      strict less-than
``Leq``     2      less-or-equal
``Gt``      2      strict greater-than
``Geq``     2      greater-or-equal
==========  =====  =========================================

Order comparisons between an int and a str fall back to comparing their
string renderings, so they are total (and deterministic) over any finite
domain.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.datalog.terms import Constant

Row = tuple[Constant, ...]


def _key(constant: Constant):
    value = constant.value
    if isinstance(value, int):
        return (0, value)
    return (1, value)


def _comparable(left: Constant, right: Constant) -> tuple:
    if isinstance(left.value, int) == isinstance(right.value, int):
        return left.value, right.value
    return str(left.value), str(right.value)


def _eq(row: Row) -> bool:
    return row[0] == row[1]


def _neq(row: Row) -> bool:
    return row[0] != row[1]


def _lt(row: Row) -> bool:
    left, right = _comparable(row[0], row[1])
    return left < right


def _leq(row: Row) -> bool:
    left, right = _comparable(row[0], row[1])
    return left <= right


def _gt(row: Row) -> bool:
    left, right = _comparable(row[0], row[1])
    return left > right


def _geq(row: Row) -> bool:
    left, right = _comparable(row[0], row[1])
    return left >= right


#: name -> (arity, evaluator)
BUILTINS: Mapping[str, tuple[int, Callable[[Row], bool]]] = {
    "Eq": (2, _eq),
    "Neq": (2, _neq),
    "Lt": (2, _lt),
    "Leq": (2, _leq),
    "Gt": (2, _gt),
    "Geq": (2, _geq),
}


def is_builtin(predicate: str) -> bool:
    """True for the reserved rigid predicates above."""
    return predicate in BUILTINS


def builtin_arity(predicate: str) -> int:
    """Declared arity of a built-in (KeyError for non-built-ins)."""
    return BUILTINS[predicate][0]


def evaluate_builtin(predicate: str, row: Row) -> bool:
    """Evaluate a built-in on a ground argument tuple."""
    arity, evaluate = BUILTINS[predicate]
    if len(row) != arity:
        from repro.datalog.errors import ArityError

        raise ArityError(
            f"built-in {predicate} expects {arity} arguments, got {len(row)}"
        )
    return evaluate(row)
