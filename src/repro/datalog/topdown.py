"""A goal-directed, SLDNF-flavoured prover.

Section 4 of the paper stresses that the interpretations are *not* tied to an
evaluation strategy: "a particular implementation of these interpretations
could be based either on a top-down or on a bottom-up query evaluation
procedure".  This module is the top-down half of that claim; the bottom-up
half is :mod:`repro.datalog.evaluation`.  The test suite checks they agree.

The prover performs SLD resolution with negation as failure for ground
negative subgoals, a subsumption-based loop check (a subgoal identical up to
variable renaming to an ancestor call fails finitely) and a configurable
depth bound.  The loop check makes the prover complete for recursive
programs over acyclic data and terminating on all inputs; on cyclic data the
bottom-up evaluator remains the reference.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.datalog.errors import DepthLimitExceeded, SafetyError
from repro.datalog.evaluation import FactSource
from repro.datalog.rules import Atom, Literal, Rule
from repro.datalog.terms import Constant, Variable
from repro.datalog.unification import (
    Substitution,
    match_tuple,
    rename_apart,
    resolve,
    unify_atoms,
)


def _canonical(goal: Atom, subst: Substitution) -> tuple:
    """A renaming-invariant key for the loop check."""
    names: dict[Variable, int] = {}
    key: list = [goal.predicate]
    for term in goal.args:
        term = resolve(term, subst)
        if isinstance(term, Constant):
            key.append(("c", term.value))
        else:
            key.append(("v", names.setdefault(term, len(names))))
    return tuple(key)


class TopDownProver:
    """SLDNF-style prover over a fact source and a rule set."""

    def __init__(self, facts: FactSource, rules: Sequence[Rule],
                 max_depth: int = 2000):
        self._facts = facts
        self._rules_by_predicate: dict[str, list[Rule]] = {}
        for r in rules:
            self._rules_by_predicate.setdefault(r.head.predicate, []).append(r)
        self._max_depth = max_depth

    def holds(self, literal: Literal, subst: Substitution | None = None) -> bool:
        """True when the (ground after *subst*) literal is provable."""
        return next(self.prove((literal,), subst), None) is not None

    def prove(self, conjunction: Sequence[Literal],
              subst: Substitution | None = None) -> Iterator[Substitution]:
        """Yield substitutions proving the conjunction (may repeat answers)."""
        yield from self._prove(list(conjunction), dict(subst or {}), (), 0)

    def answers(self, query: Atom) -> list[Substitution]:
        """Distinct answer substitutions over the query's variables."""
        variables = set(query.variables())
        seen: set[tuple] = set()
        results: list[Substitution] = []
        for bindings in self.prove((Literal(query, True),)):
            projected = {v: resolve(v, bindings) for v in variables}
            key = tuple(sorted((v.name, t) for v, t in projected.items()))
            if key not in seen:
                seen.add(key)
                results.append(projected)
        return results

    # -- internals -----------------------------------------------------------

    def _prove(self, goals: list[Literal], subst: dict,
               ancestors: tuple, depth: int) -> Iterator[Substitution]:
        if depth > self._max_depth:
            raise DepthLimitExceeded(
                f"top-down proof exceeded depth {self._max_depth}"
            )
        if not goals:
            yield subst
            return
        literal, *rest = goals
        if literal.positive:
            yield from self._prove_positive(literal, rest, subst, ancestors, depth)
        else:
            yield from self._prove_negative(literal, rest, subst, ancestors, depth)

    def _prove_positive(self, literal: Literal, rest: list[Literal],
                        subst: dict, ancestors: tuple, depth: int) -> Iterator[Substitution]:
        from repro.datalog.builtins import evaluate_builtin, is_builtin

        goal = literal.atom
        if is_builtin(goal.predicate):
            pattern = tuple(resolve(t, subst) for t in goal.args)
            if not all(isinstance(t, Constant) for t in pattern):
                if any(g.positive and not is_builtin(g.predicate) for g in rest):
                    yield from self._prove(rest + [literal], subst,
                                           ancestors, depth + 1)
                    return
                raise SafetyError(f"non-ground built-in subgoal: {literal}")
            if evaluate_builtin(goal.predicate, pattern):
                yield from self._prove(rest, subst, ancestors, depth + 1)
            return
        key = _canonical(goal, subst)
        if key in ancestors:
            return  # loop: fail this branch finitely
        pattern = tuple(resolve(t, subst) for t in goal.args)
        for row in self._facts.lookup(goal.predicate, pattern):
            bindings = match_tuple(pattern, row, subst)
            if bindings is not None:
                yield from self._prove(rest, dict(bindings), ancestors, depth + 1)
        for r in self._rules_by_predicate.get(goal.predicate, ()):
            fresh = rename_apart(r)
            unified = unify_atoms(Atom(goal.predicate, pattern), fresh.head, subst)
            if unified is None:
                continue
            yield from self._prove(
                list(fresh.body) + rest,
                dict(unified),
                ancestors + (key,),
                depth + 1,
            )

    def _prove_negative(self, literal: Literal, rest: list[Literal],
                        subst: dict, ancestors: tuple, depth: int) -> Iterator[Substitution]:
        from repro.datalog.builtins import evaluate_builtin, is_builtin

        pattern = tuple(resolve(t, subst) for t in literal.args)
        if is_builtin(literal.predicate) \
                and all(isinstance(t, Constant) for t in pattern):
            if not evaluate_builtin(literal.predicate, pattern):
                yield from self._prove(rest, subst, ancestors, depth + 1)
            return
        if not all(isinstance(t, Constant) for t in pattern):
            # Delay: move the literal after the rest when something positive
            # remains to bind it; otherwise the conjunction is unsafe.
            if any(g.positive for g in rest):
                yield from self._prove(rest + [literal], subst, ancestors, depth + 1)
                return
            raise SafetyError(f"non-ground negative subgoal: {literal}")
        ground = Literal(Atom(literal.predicate, pattern), True)
        if next(self._prove([ground], dict(subst), ancestors, depth + 1), None) is None:
            yield from self._prove(rest, subst, ancestors, depth + 1)
