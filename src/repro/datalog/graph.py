"""A small directed-graph toolkit used by the dependency analyses.

Implemented from scratch (no external graph library) because the substrate is
part of what we reproduce.  Provides labelled edges, iterative Tarjan SCC
(no recursion limit issues on deep rule towers) and topological sorting of
the condensation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generic, Hashable, Iterable, Iterator, TypeVar

Node = TypeVar("Node", bound=Hashable)
Label = TypeVar("Label")


@dataclass
class Digraph(Generic[Node, Label]):
    """A directed graph with optional edge labels and parallel-edge merging.

    Multiple labels on one (source, target) pair accumulate in a set, which is
    exactly what predicate dependency graphs need (an edge can be both
    positive and negative).
    """

    _successors: dict = field(default_factory=dict)
    _labels: dict = field(default_factory=dict)

    def add_node(self, node: Node) -> None:
        """Add *node* (idempotent)."""
        self._successors.setdefault(node, set())

    def add_edge(self, source: Node, target: Node, label: Label | None = None) -> None:
        """Add an edge, merging labels of parallel edges."""
        self.add_node(source)
        self.add_node(target)
        self._successors[source].add(target)
        if label is not None:
            self._labels.setdefault((source, target), set()).add(label)

    def nodes(self) -> Iterator[Node]:
        """Iterate over all nodes."""
        return iter(self._successors)

    def successors(self, node: Node) -> frozenset:
        """Direct successors of *node* (empty set if unknown)."""
        return frozenset(self._successors.get(node, ()))

    def labels(self, source: Node, target: Node) -> frozenset:
        """Labels attached to the (source, target) edge."""
        return frozenset(self._labels.get((source, target), ()))

    def has_edge(self, source: Node, target: Node) -> bool:
        """True when the edge exists."""
        return target in self._successors.get(source, ())

    def __contains__(self, node: Node) -> bool:
        return node in self._successors

    def __len__(self) -> int:
        return len(self._successors)

    # -- analyses ----------------------------------------------------------

    def strongly_connected_components(self) -> list[frozenset]:
        """Tarjan's algorithm, iterative, in reverse topological order."""
        index_of: dict[Node, int] = {}
        lowlink: dict[Node, int] = {}
        on_stack: set[Node] = set()
        stack: list[Node] = []
        components: list[frozenset] = []
        counter = 0

        for root in list(self._successors):
            if root in index_of:
                continue
            work: list[tuple[Node, Iterator[Node]]] = [(root, iter(self._successors[root]))]
            index_of[root] = lowlink[root] = counter
            counter += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, successors = work[-1]
                advanced = False
                for successor in successors:
                    if successor not in index_of:
                        index_of[successor] = lowlink[successor] = counter
                        counter += 1
                        stack.append(successor)
                        on_stack.add(successor)
                        work.append((successor, iter(self._successors[successor])))
                        advanced = True
                        break
                    if successor in on_stack:
                        lowlink[node] = min(lowlink[node], index_of[successor])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index_of[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    components.append(frozenset(component))
        return components

    def reachable_from(self, sources: Iterable[Node]) -> set:
        """All nodes reachable from *sources* (including them)."""
        seen: set = set()
        frontier = [s for s in sources if s in self._successors]
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(self._successors.get(node, ()))
        return seen

    def reversed(self) -> "Digraph":
        """A new graph with every edge (and its labels) flipped."""
        flipped: Digraph = Digraph()
        for node in self._successors:
            flipped.add_node(node)
        for source, targets in self._successors.items():
            for target in targets:
                flipped.add_edge(target, source)
                for label in self.labels(source, target):
                    flipped.add_edge(target, source, label)
        return flipped

    def topological_order(self) -> list:
        """Kahn's algorithm; raises ValueError when the graph has a cycle."""
        in_degree: dict[Node, int] = {node: 0 for node in self._successors}
        for targets in self._successors.values():
            for target in targets:
                in_degree[target] += 1
        ready = [node for node, degree in in_degree.items() if degree == 0]
        order: list = []
        while ready:
            node = ready.pop()
            order.append(node)
            for target in self._successors[node]:
                in_degree[target] -= 1
                if in_degree[target] == 0:
                    ready.append(target)
        if len(order) != len(self._successors):
            raise ValueError("graph has a cycle; no topological order exists")
        return order
