"""Concrete syntax for deductive databases.

The grammar follows the paper's notation as closely as plain text allows::

    % comment (also '#')
    Q(A).                          % fact (constants are capitalised)
    P(x) <- Q(x) & not R(x).      % deductive rule ('&' or ',', ':-' or '<-')
    <- P(x) & S(x).                % integrity constraint in denial form
    Ic2 <- P(x) & V(x).            % integrity rule with explicit head

    Strings: 'lower case constant', "also a constant"
    Integers: 42, -7
    Negation: 'not', '~' or '¬'
    Comparisons: infix sugar for the built-ins, e.g. ``x != y`` (Neq),
    ``n >= 5`` (Geq); also ``==  <  <=  >``

Denial-form constraints are rewritten to integrity rules ``IcN <- body`` as
Section 2 prescribes, with ``N`` assigned in source order starting after any
explicitly named ``IcN`` heads.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterator

from repro.datalog.errors import ParseError
from repro.datalog.rules import Atom, Literal, Rule
from repro.datalog.terms import Constant, Term, term_from_name

#: Prefix that identifies integrity (inconsistency) predicates, per Section 2.
IC_PREFIX = "Ic"

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>[%\#][^\n]*)
  | (?P<arrow><-|:-)
  | (?P<neg>not\b|~|¬)
  | (?P<op>!=|==|<=|>=|<|>)
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<int>-?\d+)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<punct>[(),.&])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True, slots=True)
class Token:
    """One lexical token with its source position."""

    kind: str
    text: str
    line: int
    column: int


def tokenize(source: str) -> Iterator[Token]:
    """Yield tokens, raising :class:`ParseError` on unrecognised input."""
    line = 1
    line_start = 0
    position = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise ParseError(
                f"unexpected character {source[position]!r}",
                line,
                position - line_start + 1,
            )
        kind = match.lastgroup or ""
        text = match.group()
        if kind not in ("ws", "comment"):
            yield Token(kind, text, line, match.start() - line_start + 1)
        newlines = text.count("\n")
        if newlines:
            line += newlines
            line_start = match.start() + text.rfind("\n") + 1
        position = match.end()


@dataclass
class ParsedProgram:
    """Result of :func:`parse_program`: facts, rules and integrity rules.

    ``constraints`` holds the integrity rules (explicit ``Ic*`` heads and
    rewritten denials); ``rules`` holds ordinary deductive rules; ``facts``
    holds ground bodiless rules.
    """

    facts: list[Rule] = field(default_factory=list)
    rules: list[Rule] = field(default_factory=list)
    constraints: list[Rule] = field(default_factory=list)

    def all_rules(self) -> list[Rule]:
        """Facts, deductive rules and integrity rules, in that order."""
        return [*self.facts, *self.rules, *self.constraints]


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, source: str):
        self._tokens = list(tokenize(source))
        self._index = 0

    # -- token utilities ---------------------------------------------------

    def _peek(self) -> Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input")
        self._index += 1
        return token

    def _expect(self, text: str) -> Token:
        token = self._next()
        if token.text != text:
            raise ParseError(
                f"expected {text!r}, found {token.text!r}", token.line, token.column
            )
        return token

    def _at(self, text: str) -> bool:
        token = self._peek()
        return token is not None and token.text == text

    def at_end(self) -> bool:
        """True when every token has been consumed."""
        return self._peek() is None

    # -- grammar -----------------------------------------------------------

    def parse_term(self) -> Term:
        token = self._next()
        if token.kind == "name":
            return term_from_name(token.text)
        if token.kind == "int":
            return Constant(int(token.text))
        if token.kind == "string":
            return Constant(token.text[1:-1])
        raise ParseError(f"expected a term, found {token.text!r}", token.line, token.column)

    def parse_atom(self) -> Atom:
        token = self._next()
        if token.kind != "name":
            raise ParseError(
                f"expected a predicate name, found {token.text!r}", token.line, token.column
            )
        predicate = token.text
        args: list[Term] = []
        if self._at("("):
            self._next()
            if self._at(")"):
                raise ParseError("empty argument list", token.line, token.column)
            args.append(self.parse_term())
            while self._at(","):
                self._next()
                args.append(self.parse_term())
            self._expect(")")
        return Atom(predicate, tuple(args))

    #: Infix comparison sugar -> built-in predicates.
    _OPERATORS = {"==": "Eq", "!=": "Neq", "<": "Lt", "<=": "Leq",
                  ">": "Gt", ">=": "Geq"}

    def parse_literal(self) -> Literal:
        positive = True
        if self._peek() is not None and self._peek().kind == "neg":
            self._next()
            positive = False
        head_token = self._peek()
        if head_token is not None and head_token.kind in ("int", "string"):
            # A literal starting with a non-name term must be a comparison.
            left = self.parse_term()
            operator_token = self._next()
            if operator_token.kind != "op":
                raise ParseError(
                    f"expected a comparison operator, found "
                    f"{operator_token.text!r}",
                    operator_token.line, operator_token.column)
            right = self.parse_term()
            return Literal(
                Atom(self._OPERATORS[operator_token.text], (left, right)),
                positive)
        atom_or_term = self.parse_atom()
        nxt = self._peek()
        if nxt is not None and nxt.kind == "op":
            # Infix comparison: the parsed "atom" was really a bare term.
            if atom_or_term.args:
                raise ParseError(
                    f"comparison operand must be a plain term, got "
                    f"{atom_or_term}", nxt.line, nxt.column)
            operator = self._next().text
            left = term_from_name(atom_or_term.predicate)
            right = self.parse_term()
            return Literal(Atom(self._OPERATORS[operator], (left, right)),
                           positive)
        return Literal(atom_or_term, positive)

    def parse_body(self) -> list[Literal]:
        literals = [self.parse_literal()]
        while self._at("&") or self._at(","):
            self._next()
            literals.append(self.parse_literal())
        return literals

    def parse_statement(self) -> tuple[Atom | None, list[Literal]]:
        """One statement up to '.'; head None means a denial."""
        if self._peek() is not None and self._peek().kind == "arrow":
            self._next()
            body = self.parse_body()
            self._expect(".")
            return None, body
        head = self.parse_atom()
        body: list[Literal] = []
        if self._peek() is not None and self._peek().kind == "arrow":
            self._next()
            body = self.parse_body()
        self._expect(".")
        return head, body


def parse_program(source: str) -> ParsedProgram:
    """Parse a whole program; see the module docstring for the grammar."""
    parser = _Parser(source)
    program = ParsedProgram()
    used_ic_numbers: set[int] = set()
    pending_denials: list[list[Literal]] = []
    while not parser.at_end():
        head, body = parser.parse_statement()
        if head is None:
            pending_denials.append(body)
            continue
        statement = Rule(head, tuple(body))
        if head.predicate.startswith(IC_PREFIX) and head.predicate[len(IC_PREFIX):].isdigit():
            used_ic_numbers.add(int(head.predicate[len(IC_PREFIX):]))
            program.constraints.append(statement)
        elif not body:
            if not head.is_ground():
                raise ParseError(f"fact must be ground: {head}")
            program.facts.append(statement)
        else:
            program.rules.append(statement)
    next_number = 1
    for body in pending_denials:
        while next_number in used_ic_numbers:
            next_number += 1
        used_ic_numbers.add(next_number)
        # Give the inconsistency predicate the denial's variables as terms
        # (the paper: "with or without terms").  Parameterised heads let the
        # downward interpretation repair one violating instance at a time.
        seen_variables: list = []
        for literal in body:
            for variable in literal.variables():
                if variable not in seen_variables:
                    seen_variables.append(variable)
        head = Atom(f"{IC_PREFIX}{next_number}", tuple(seen_variables))
        program.constraints.append(Rule(head, tuple(body)))
    return program


def _parse_single(source: str, production: str):
    parser = _Parser(source)
    result = getattr(parser, f"parse_{production}")()
    if parser._at("."):
        parser._next()
    if not parser.at_end():
        token = parser._peek()
        raise ParseError(f"trailing input {token.text!r}", token.line, token.column)
    return result


def parse_atom(source: str) -> Atom:
    """Parse a single atom, e.g. ``"P(x, A)"``."""
    return _parse_single(source, "atom")


def parse_literal(source: str) -> Literal:
    """Parse a single literal, e.g. ``"not R(x)"``."""
    return _parse_single(source, "literal")


def parse_rule(source: str) -> Rule:
    """Parse a single rule or fact (trailing '.' optional)."""
    text = source.rstrip()
    if not text.endswith("."):
        text += "."
    parser = _Parser(text)
    head, body = parser.parse_statement()
    if head is None:
        raise ParseError("expected a rule, found a denial")
    if not parser.at_end():
        token = parser._peek()
        raise ParseError(f"trailing input {token.text!r}", token.line, token.column)
    return Rule(head, tuple(body))
