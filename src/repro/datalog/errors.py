"""Exception hierarchy for the Datalog substrate and the event-rule layers.

All library errors derive from :class:`DatalogError` so callers can catch a
single type at the API boundary.  Each subclass corresponds to one way a
program, database or update request can be ill-formed.
"""

from __future__ import annotations


class DatalogError(Exception):
    """Base class of every error raised by the library."""


class ParseError(DatalogError):
    """Raised when concrete Datalog syntax cannot be parsed.

    Carries enough position information to point the user at the offending
    token.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class ArityError(DatalogError):
    """Raised when a predicate is used with inconsistent arities."""


class UnknownPredicateError(DatalogError):
    """Raised when an operation refers to a predicate absent from the schema."""


class SafetyError(DatalogError):
    """Raised when a rule violates the "allowed" condition of the paper (S2).

    A rule is allowed when every variable occurring anywhere in it also
    occurs in a positive body condition.  Allowedness guarantees that
    negation-as-failure and event-rule expansion are well defined.
    """


class StratificationError(DatalogError):
    """Raised when a program has no stratification (negation through recursion)."""


class DomainError(DatalogError):
    """Raised when finite-domain enumeration is required but no domain exists."""


class TransactionError(DatalogError):
    """Raised for ill-formed transactions (e.g. inserting and deleting one fact)."""


class RoutingError(DatalogError):
    """Raised when a sharded deployment cannot route a request.

    Covers events on predicates absent from the routing table, operations
    that require a single shard issued against a multi-shard group, and
    malformed routing configuration (see :mod:`repro.shard`).
    """


class UnavailableError(DatalogError):
    """Raised when a required backend shard cannot be reached.

    The sharded router maps transport-level failures (connection refused,
    retries exhausted, a lost connection mid-call) to this type so clients
    see one retryable wire error (``unavailable``) instead of a grab-bag
    of socket exceptions.
    """


class SubscriptionError(DatalogError):
    """Raised when a standing-query subscription cannot be registered.

    Covers malformed goals, goals over base or unknown predicates (the
    change feed carries *induced* deltas, so only derived predicates can
    be watched), unknown subscription ids, and subscribe requests issued
    on a transport that cannot carry a push feed (see
    :mod:`repro.server.feed`).
    """


class ComplexityLimitExceeded(DatalogError):
    """Raised when a DNF grows past its configured size bound.

    Downward results are inherently exponential in the number of independent
    alternatives (repairing k violations with a choices each yields a^k
    combined repairs); the bound turns a silent blow-up into a diagnosable
    error suggesting a finer-grained request.
    """


class DepthLimitExceeded(DatalogError):
    """Raised when goal-directed search exceeds its configured depth bound.

    The downward interpretation of recursive predicates may have infinitely
    many candidate translations; the bound makes the search a decision
    procedure for the bounded fragment and a semi-decision procedure overall.
    """
