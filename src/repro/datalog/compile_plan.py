"""Compiled join plans: batched, closure-chain bottom-up evaluation.

The interpreted evaluator walks each rule body literal-at-a-time through a
backtracking ``_solve``, re-resolving every pending literal's argument
pattern at every choice point and threading dict substitutions per tuple.
That is the right shape for ad-hoc goal solving, but materialisation -- the
hot path under every upward/downward interpretation, IC check and IVM delta
-- evaluates the *same* rule bodies thousands of times over growing
extensions.  This module compiles each stratified rule body **once** into a
closure-chain *join plan* and runs a batched semi-naive fixpoint over sets
of tuples:

- **fixed join order** chosen statically by :func:`order_body`: ground
  literals and built-ins are pushed as early as their bindings allow,
  positive literals are ordered most-bound-first with relation-size
  tie-breaks from per-predicate index statistics;
- **slot registers** instead of dict substitutions: variables are assigned
  integer slots in binding order, a partial join result is a plain tuple,
  and each join step extends whole batches at a time;
- **indexed extensions everywhere**: derived predicates get lazily built,
  incrementally maintained hash indexes on the bound-column combinations
  the plans actually probe -- the same treatment
  :class:`~repro.datalog.database.Relation` gives base relations (the
  interpreter full-scans derived extensions even for bound patterns);
- **interned rows**: derived tuples are deduplicated through an intern
  table so repeated derivations share one tuple object and set membership
  stays cheap.

:class:`ProgramPlan` is the engine behind
``BottomUpEvaluator(engine="compiled")``; the tuple-at-a-time interpreter
remains available as ``engine="interpreted"`` and serves as the
differential-testing oracle (see ``tests/test_compiled_eval.py``).  The
same planner orders the counting maintainer's delta-rule bodies and the
magic-rewritten programs' adorned rules.  See docs/EVALUATION.md.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

from repro.datalog.builtins import evaluate_builtin, is_builtin
from repro.datalog.errors import SafetyError
from repro.datalog.rules import Literal, Rule
from repro.datalog.terms import Constant, Term, Variable
from repro.obs import tracer as obs

Row = tuple[Constant, ...]

#: Engine names accepted by :class:`~repro.datalog.evaluation.BottomUpEvaluator`.
ENGINE_COMPILED = "compiled"
ENGINE_INTERPRETED = "interpreted"
ENGINES = (ENGINE_COMPILED, ENGINE_INTERPRETED)

#: Environment override for the default engine (e.g. in CI ablations).
ENV_ENGINE = "REPRO_EVAL_ENGINE"


def resolve_engine(engine: str | None, semi_naive: bool = True) -> str:
    """Resolve an engine choice: explicit > naive-iteration > env > compiled.

    ``semi_naive=False`` pins the interpreter unless an engine is named
    explicitly -- the compiled engine is inherently batched semi-naive, so
    the naive-iteration ablation only exists interpreted.
    """
    if engine is None:
        if not semi_naive:
            return ENGINE_INTERPRETED
        engine = os.environ.get(ENV_ENGINE) or ENGINE_COMPILED
    if engine not in ENGINES:
        raise ValueError(
            f"unknown evaluation engine: {engine!r} (expected one of {ENGINES})")
    return engine


@dataclass
class PlanStats:
    """Planner/index counters, exposed as ``BottomUpEvaluator.plan_stats``."""

    #: Rule bodies compiled into closure chains.
    rules_compiled: int = 0
    #: Hash indexes built from scratch (a build is O(|extension|); steady
    #: state should probe and incrementally maintain, not rebuild).
    index_builds: int = 0
    #: Index probes served.
    index_probes: int = 0
    #: Derived rows deduplicated through the intern table.
    rows_interned: int = 0

    def to_counters(self) -> dict[str, int]:
        """Counter form for tracing/metrics surfaces."""
        return {
            "rules_compiled": self.rules_compiled,
            "index_builds": self.index_builds,
            "index_probes": self.index_probes,
            "rows_interned": self.rows_interned,
        }


# ---------------------------------------------------------------------------
# Join-order selection (shared with the counting maintainer's delta rules).
# ---------------------------------------------------------------------------


def _ready(literal: Literal, bound: set[Variable]) -> bool:
    return all(isinstance(t, Constant) or t in bound for t in literal.args)


def order_body(body: Sequence[Literal], bound: Iterable[Variable] = (),
               size_of: Callable[[str], int] | None = None) -> tuple[int, ...]:
    """A fixed evaluation order for a conjunction, as body-index permutation.

    Starting from the *bound* variables, repeatedly:

    - emit every built-in, negative or fully-bound positive literal whose
      arguments are ground under the current bindings (cheap tests first);
    - then pick the positive literal with the most bound argument
      positions, tie-breaking on the smaller estimated extension
      (``size_of``) and finally on source order, and bind its variables.

    Raises :class:`SafetyError` when negative or built-in literals can
    never become ground (the conjunction is unsafe).
    """
    bound_vars = set(bound)
    remaining = list(range(len(body)))
    order: list[int] = []

    def emit_tests() -> None:
        progressed = True
        while progressed:
            progressed = False
            for index in list(remaining):
                literal = body[index]
                if not _ready(literal, bound_vars):
                    continue
                order.append(index)
                remaining.remove(index)
                progressed = True

    while remaining:
        emit_tests()
        if not remaining:
            break
        best = None
        best_key = None
        for index in remaining:
            literal = body[index]
            if not literal.positive or is_builtin(literal.predicate):
                continue
            n_bound = sum(1 for t in literal.args
                          if isinstance(t, Constant) or t in bound_vars)
            size = size_of(literal.predicate) if size_of is not None else 0
            key = (-n_bound, size, index)
            if best_key is None or key < best_key:
                best, best_key = index, key
        if best is None:
            unresolved = " & ".join(str(body[i]) for i in remaining)
            raise SafetyError(
                f"cannot evaluate non-ground negative or built-in literals: "
                f"{unresolved}")
        order.append(best)
        remaining.remove(best)
        bound_vars.update(body[best].variables())
    return tuple(order)


# ---------------------------------------------------------------------------
# Indexed tuple stores.
# ---------------------------------------------------------------------------


class _Extension:
    """A set of rows plus lazily built, incrementally maintained indexes.

    ``rows`` may be a shared mutable set (derived predicates: the very set
    the evaluator exposes through ``live_extensions``) or a frozenset
    snapshot (base predicates).  Indexes are keyed by the probed position
    combination; single-column indexes use the bare constant as key, wider
    ones a tuple, so the per-probe key build stays minimal.
    """

    __slots__ = ("rows", "indexes")

    def __init__(self, rows):
        self.rows = rows
        self.indexes: dict[tuple[int, ...], dict] = {}

    def index_on(self, positions: tuple[int, ...], stats: PlanStats) -> dict:
        index = self.indexes.get(positions)
        if index is None:
            index = {}
            if len(positions) == 1:
                position = positions[0]
                for row in self.rows:
                    index.setdefault(row[position], []).append(row)
            else:
                for row in self.rows:
                    key = tuple(row[p] for p in positions)
                    index.setdefault(key, []).append(row)
            self.indexes[positions] = index
            stats.index_builds += 1
        return index

    def add_batch(self, fresh: Iterable[Row]) -> None:
        """Insert rows **not already present**, maintaining every index."""
        self.rows.update(fresh)
        for positions, index in self.indexes.items():
            if len(positions) == 1:
                position = positions[0]
                for row in fresh:
                    index.setdefault(row[position], []).append(row)
            else:
                for row in fresh:
                    key = tuple(row[p] for p in positions)
                    index.setdefault(key, []).append(row)


class _PlanSource:
    """Resolves predicates to :class:`_Extension` stores for the plans.

    Derived predicates share the evaluator's live extension sets; base
    predicates are snapshotted from the fact source on first touch (one
    ``facts_of`` per predicate per materialisation -- the same one-time
    cost the interpreter pays building a column index).
    """

    __slots__ = ("_facts", "_derived", "_base", "stats")

    def __init__(self, facts, derived: Mapping[str, set[Row]],
                 stats: PlanStats):
        self._facts = facts
        self._derived = {name: _Extension(rows)
                         for name, rows in derived.items()}
        self._base: dict[str, _Extension] = {}
        self.stats = stats

    def extension(self, predicate: str) -> _Extension:
        ext = self._derived.get(predicate)
        if ext is not None:
            return ext
        ext = self._base.get(predicate)
        if ext is None:
            ext = _Extension(frozenset(self._facts.facts_of(predicate)))
            self._base[predicate] = ext
        return ext

    def add_derived(self, predicate: str, fresh: Iterable[Row]) -> None:
        self._derived[predicate].add_batch(fresh)

    def size_of(self, predicate: str) -> int:
        """Best-effort extension size estimate for join-order tie-breaks."""
        ext = self._derived.get(predicate)
        if ext is not None:
            return len(ext.rows)
        counter = getattr(self._facts, "count_of", None)
        if counter is not None:
            return counter(predicate)
        return len(self.extension(predicate).rows)


# ---------------------------------------------------------------------------
# Step compilation.
# ---------------------------------------------------------------------------


def _literal_shape(literal: Literal, slot_of: dict[Variable, int],
                   bind: bool) -> tuple:
    """Dissect a literal's argument pattern against the current slot map.

    Returns ``(key_parts, out_positions, checks)``:

    - ``key_parts``: ``(position, slot_or_None, const_or_None)`` per bound
      argument (constant or already-slotted variable), ascending;
    - ``out_positions``: row positions whose (new) variable gets a fresh
      slot, in first-occurrence order -- assigned into ``slot_of`` when
      *bind* is set;
    - ``checks``: ``(position, first_position)`` pairs for repeated new
      variables inside the literal (row-internal equality).
    """
    key_parts: list[tuple[int, int | None, Constant | None]] = []
    out_positions: list[int] = []
    checks: list[tuple[int, int]] = []
    fresh: dict[Variable, int] = {}
    for position, term in enumerate(literal.args):
        if isinstance(term, Constant):
            key_parts.append((position, None, term))
        elif term in slot_of:
            key_parts.append((position, slot_of[term], None))
        elif term in fresh:
            checks.append((position, fresh[term]))
        else:
            fresh[term] = position
            out_positions.append(position)
    if bind:
        for variable in fresh:
            slot_of[variable] = len(slot_of)
    return key_parts, tuple(out_positions), tuple(checks)


def _key_builder(key_parts) -> Callable:
    """A ``regs -> index key`` closure for a step's bound positions."""
    if len(key_parts) == 1:
        _, slot, const = key_parts[0]
        if slot is None:
            return lambda regs, c=const: c
        return lambda regs, s=slot: regs[s]
    parts = tuple((slot, const) for _, slot, const in key_parts)
    return lambda regs, parts=parts: tuple(
        const if slot is None else regs[slot] for slot, const in parts)


def _row_builder(literal: Literal, slot_of: Mapping[Variable, int]) -> Callable:
    """A ``regs -> ground row`` closure for a fully bound literal."""
    parts = []
    for term in literal.args:
        if isinstance(term, Constant):
            parts.append((None, term))
        else:
            parts.append((slot_of[term], None))
    parts = tuple(parts)
    return lambda regs, parts=parts: tuple(
        const if slot is None else regs[slot] for slot, const in parts)


def _extend_builder(out_positions: tuple[int, ...]) -> Callable:
    """A ``(regs, row) -> extended regs`` closure (specialised small arities)."""
    if not out_positions:
        return lambda regs, row: regs
    if len(out_positions) == 1:
        o0 = out_positions[0]
        return lambda regs, row: regs + (row[o0],)
    if len(out_positions) == 2:
        o0, o1 = out_positions
        return lambda regs, row: regs + (row[o0], row[o1])
    return lambda regs, row, out=out_positions: regs + tuple(
        row[o] for o in out)


class _RulePlan:
    """One rule body compiled to a closure chain plus a head projection."""

    __slots__ = ("rule", "steps", "delta_scan", "project", "head_predicate")

    def __init__(self, rule: Rule, steps, delta_scan, project):
        self.rule = rule
        self.steps = steps
        self.delta_scan = delta_scan
        self.project = project
        self.head_predicate = rule.head.predicate

    def run(self, intern: dict, delta_rows: Iterable[Row] | None = None) -> set[Row]:
        """Execute the chain; *delta_rows* feeds the delta-restricted scan."""
        if self.delta_scan is not None:
            batch = self.delta_scan(delta_rows)
        else:
            batch = [()]
        for step in self.steps:
            if not batch:
                return set()
            batch = step(batch)
        return self.project(batch, intern)


def compile_rule(rule: Rule, source: _PlanSource, stats,
                 plan_stats: PlanStats,
                 delta_index: int | None = None) -> _RulePlan:
    """Compile one rule into a :class:`_RulePlan`.

    With *delta_index* the body literal at that index becomes the
    delta-restricted first step (semi-naive recursion); its rows are
    supplied at run time instead of read from the extension store.

    Raises :class:`SafetyError` for bodies whose negative/built-in
    literals can never become ground, and for heads the body cannot bind.
    """
    body = list(rule.body)
    slot_of: dict[Variable, int] = {}
    steps: list[Callable] = []
    delta_scan = None
    plan_stats.rules_compiled += 1

    if delta_index is not None:
        delta_literal = body[delta_index]
        key_parts, out_positions, checks = _literal_shape(
            delta_literal, slot_of, bind=True)
        const_checks = tuple((p, c) for p, s, c in key_parts if s is None)
        extend = _extend_builder(out_positions)

        def delta_scan(rows, const_checks=const_checks, checks=checks,
                       extend=extend, stats=stats):
            out = []
            append = out.append
            n = 0
            for row in rows:
                n += 1
                if const_checks and any(row[p] != c for p, c in const_checks):
                    continue
                if checks and any(row[a] != row[b] for a, b in checks):
                    continue
                append(extend((), row))
            stats.literals_matched += n
            return out

        ordered = [delta_index] + [
            i for i in order_body(
                [lit for j, lit in enumerate(body) if j != delta_index],
                bound=slot_of, size_of=source.size_of)
        ]
        # order_body returned indices into the delta-less body; map back.
        rest = [j for j in range(len(body)) if j != delta_index]
        ordered = [delta_index] + [rest[i] for i in ordered[1:]]
    else:
        ordered = list(order_body(body, size_of=source.size_of))

    for index in ordered:
        if delta_index is not None and index == delta_index:
            continue
        literal = body[index]
        predicate = literal.predicate
        if is_builtin(predicate):
            build_row = _row_builder(literal, slot_of)
            positive = literal.positive

            def step(batch, predicate=predicate, build_row=build_row,
                     positive=positive):
                return [regs for regs in batch
                        if evaluate_builtin(predicate, build_row(regs))
                        is positive]

            steps.append(step)
            continue
        if _ready(literal, set(slot_of)):
            # Fully bound: a (semi-)membership test against the extension.
            build_row = _row_builder(literal, slot_of)
            positive = literal.positive

            def step(batch, predicate=predicate, build_row=build_row,
                     positive=positive, source=source, stats=stats):
                rows = source.extension(predicate).rows
                stats.literals_matched += len(batch)
                if positive:
                    return [regs for regs in batch if build_row(regs) in rows]
                return [regs for regs in batch if build_row(regs) not in rows]

            steps.append(step)
            continue
        # Positive literal with free variables: an indexed join step.
        key_parts, out_positions, checks = _literal_shape(
            literal, slot_of, bind=True)
        extend = _extend_builder(out_positions)
        if not key_parts:
            def step(batch, predicate=predicate, extend=extend, checks=checks,
                     source=source, stats=stats):
                rows = source.extension(predicate).rows
                stats.literals_matched += len(rows) * len(batch)
                out = []
                append = out.append
                if checks:
                    rows = [row for row in rows
                            if all(row[a] == row[b] for a, b in checks)]
                for regs in batch:
                    for row in rows:
                        append(extend(regs, row))
                return out

            steps.append(step)
            continue
        positions = tuple(p for p, _, _ in key_parts)
        build_key = _key_builder(key_parts)
        consts_only = all(slot is None for _, slot, _ in key_parts)

        def step(batch, predicate=predicate, positions=positions,
                 build_key=build_key, extend=extend, checks=checks,
                 consts_only=consts_only, source=source, stats=stats,
                 plan_stats=plan_stats):
            index = source.extension(predicate).index_on(positions, plan_stats)
            out = []
            append = out.append
            matched = 0
            if consts_only:
                plan_stats.index_probes += 1
                bucket = index.get(build_key(()))
                if bucket:
                    matched = len(bucket) * len(batch)
                    for regs in batch:
                        for row in bucket:
                            if checks and any(row[a] != row[b]
                                              for a, b in checks):
                                continue
                            append(extend(regs, row))
            else:
                plan_stats.index_probes += len(batch)
                get = index.get
                for regs in batch:
                    bucket = get(build_key(regs))
                    if not bucket:
                        continue
                    matched += len(bucket)
                    for row in bucket:
                        if checks and any(row[a] != row[b] for a, b in checks):
                            continue
                        append(extend(regs, row))
            stats.literals_matched += matched
            return out

        steps.append(step)

    # Head projection: every head variable must have been bound.
    head_parts = []
    for term in rule.head.args:
        if isinstance(term, Constant):
            head_parts.append((None, term))
        elif term in slot_of:
            head_parts.append((slot_of[term], None))
        else:
            raise SafetyError(f"derived a non-ground head from rule: {rule}")
    head_parts = tuple(head_parts)

    def project(batch, intern, head_parts=head_parts, plan_stats=plan_stats):
        out: set[Row] = set()
        add = out.add
        setdefault = intern.setdefault
        for regs in batch:
            row = tuple(const if slot is None else regs[slot]
                        for slot, const in head_parts)
            add(setdefault(row, row))
        plan_stats.rows_interned += len(batch) - len(out)
        return out

    return _RulePlan(rule, tuple(steps), delta_scan, project)


# ---------------------------------------------------------------------------
# The batched semi-naive driver.
# ---------------------------------------------------------------------------


class ProgramPlan:
    """Compiled plans for a stratified program, sharing one extension map.

    ``extensions`` is the evaluator's own derived-extension mapping: the
    plans index and update those very sets, so the evaluator's public
    surface (``live_extensions``, ``apply_delta``) keeps working on the
    compiled engine without copying.
    """

    def __init__(self, rules: Sequence[Rule], facts,
                 extensions: Mapping[str, set[Row]], stats,
                 plan_stats: PlanStats | None = None):
        self.plan_stats = plan_stats if plan_stats is not None else PlanStats()
        self._stats = stats
        self._source = _PlanSource(facts, extensions, self.plan_stats)
        self._rules = list(rules)
        self._plans: dict[int, _RulePlan] = {}
        self._delta_plans: dict[tuple[int, int], _RulePlan] = {}
        self._intern: dict[Row, Row] = {}

    def _plan_for(self, rule_index: int) -> _RulePlan:
        plan = self._plans.get(rule_index)
        if plan is None:
            plan = compile_rule(self._rules[rule_index], self._source,
                                self._stats, self.plan_stats)
            self._plans[rule_index] = plan
        return plan

    def _delta_plan_for(self, rule_index: int, literal_index: int) -> _RulePlan:
        key = (rule_index, literal_index)
        plan = self._delta_plans.get(key)
        if plan is None:
            plan = compile_rule(self._rules[rule_index], self._source,
                                self._stats, self.plan_stats,
                                delta_index=literal_index)
            self._delta_plans[key] = plan
        return plan

    def evaluate_stratum(self, stratum: frozenset[str],
                         rule_indexes: Sequence[int]) -> None:
        """Batched semi-naive fixpoint of one stratum (in place)."""
        stats = self._stats
        source = self._source
        intern = self._intern
        stats.iterations += 1
        delta: dict[str, set[Row]] = {}
        for rule_index in rule_indexes:
            plan = self._plan_for(rule_index)
            stats.rule_firings += 1
            derived = plan.run(intern)
            fresh = derived - source.extension(plan.head_predicate).rows
            if fresh:
                source.add_derived(plan.head_predicate, fresh)
                delta.setdefault(plan.head_predicate, set()).update(fresh)
                stats.facts_derived += len(fresh)
        recursive: list[tuple[int, list[int]]] = []
        for rule_index in rule_indexes:
            rule = self._rules[rule_index]
            positions = [i for i, literal in enumerate(rule.body)
                         if literal.positive and literal.predicate in stratum]
            if positions:
                recursive.append((rule_index, positions))
        while delta:
            stats.iterations += 1
            if obs.enabled():
                obs.add("delta_rounds")
                obs.add("delta_rows",
                        sum(len(rows) for rows in delta.values()))
            next_delta: dict[str, set[Row]] = {}
            for rule_index, positions in recursive:
                rule = self._rules[rule_index]
                for literal_index in positions:
                    delta_rows = delta.get(rule.body[literal_index].predicate)
                    if not delta_rows:
                        continue
                    plan = self._delta_plan_for(rule_index, literal_index)
                    stats.rule_firings += 1
                    derived = plan.run(intern, delta_rows)
                    fresh = derived - source.extension(plan.head_predicate).rows
                    if fresh:
                        source.add_derived(plan.head_predicate, fresh)
                        next_delta.setdefault(plan.head_predicate,
                                              set()).update(fresh)
                        stats.facts_derived += len(fresh)
            delta = next_delta
