"""Derivation explanations: *why* does a derived fact hold?

Production tooling for the substrate: given a derived fact, produce its
derivation tree(s) -- which rule fired, under which bindings, supported by
which facts.  The event-rule layer uses the same machinery to explain
*induced events* (which transition disjunct fired).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.datalog.builtins import is_builtin
from repro.datalog.evaluation import BottomUpEvaluator
from repro.datalog.rules import Atom, Literal, Rule
from repro.datalog.terms import Constant
from repro.datalog.unification import match_tuple, resolve

Row = tuple[Constant, ...]


@dataclass(frozen=True)
class Derivation:
    """One derivation step: a fact, and (for derived facts) its support."""

    fact: Atom
    #: The rule instance that produced the fact (None for stored facts,
    #: built-ins and negative support).
    rule: Rule | None = None
    #: Sub-derivations of the positive body literals.
    support: tuple["Derivation", ...] = ()
    #: Negative conditions the derivation relied on (rendered, checked).
    absences: tuple[Literal, ...] = ()

    def is_leaf(self) -> bool:
        """True for stored facts / built-in truths."""
        return self.rule is None

    def depth(self) -> int:
        """Height of the derivation tree."""
        if not self.support:
            return 1
        return 1 + max(child.depth() for child in self.support)

    def render(self, indent: int = 0) -> str:
        """A human-readable proof tree."""
        pad = "  " * indent
        if self.rule is None:
            return f"{pad}{self.fact}  [fact]"
        lines = [f"{pad}{self.fact}  [{self.rule}]"]
        for child in self.support:
            lines.append(child.render(indent + 1))
        for literal in self.absences:
            lines.append(f"{'  ' * (indent + 1)}{literal}  [holds]")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


class Explainer:
    """Builds derivation trees against one database state."""

    def __init__(self, evaluator: BottomUpEvaluator, rules: Sequence[Rule]):
        self._evaluator = evaluator
        self._rules_of: dict[str, list[Rule]] = {}
        for rule in rules:
            self._rules_of.setdefault(rule.head.predicate, []).append(rule)

    @classmethod
    def for_database(cls, db) -> "Explainer":
        """An explainer over DR ∪ IC (plus the global ``Ic``) of *db*."""
        rules = db.rules_with_global_ic()
        return cls(BottomUpEvaluator(db, rules), rules)

    def explain(self, predicate: str, row: Row,
                max_explanations: int = 1) -> tuple[Derivation, ...]:
        """Derivation trees of ``predicate(row)`` (empty when it is false)."""
        return tuple(self._explain_atom(Atom(predicate, row),
                                        max_explanations))

    # -- internals ---------------------------------------------------------------

    def _explain_atom(self, goal: Atom,
                      limit: int) -> Iterator[Derivation]:
        produced = 0
        row = tuple(goal.args)
        rules = self._rules_of.get(goal.predicate)
        if rules is None:
            # Base predicate: a stored fact is its own explanation.
            if row in self._evaluator.extension(goal.predicate):
                yield Derivation(goal)
            return
        if row not in self._evaluator.extension(goal.predicate):
            return
        for rule in rules:
            bindings = match_tuple(tuple(rule.head.args), row, {})  # type: ignore[arg-type]
            if bindings is None:
                continue
            for solution in self._evaluator.solve(list(rule.body), bindings):
                support: list[Derivation] = []
                absences: list[Literal] = []
                for literal in rule.body:
                    ground_args = tuple(resolve(t, solution)
                                        for t in literal.args)
                    ground = Atom(literal.predicate, ground_args)
                    if is_builtin(literal.predicate) or not literal.positive:
                        absences.append(Literal(ground, literal.positive))
                        continue
                    child = next(self._explain_atom(ground, 1), None)
                    if child is None:
                        break
                    support.append(child)
                else:
                    grounded_rule = Rule(
                        Atom(rule.head.predicate, row),
                        tuple(Literal(Atom(l.predicate,
                                           tuple(resolve(t, solution)
                                                 for t in l.args)),
                                      l.positive) for l in rule.body),
                    )
                    yield Derivation(Atom(goal.predicate, row), grounded_rule,
                                     tuple(support), tuple(absences))
                    produced += 1
                    if produced >= limit:
                        return
