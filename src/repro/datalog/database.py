"""The deductive database ``D = (F, DR, IC)`` of Section 2.

:class:`DeductiveDatabase` holds the extensional part (facts, with
per-column indexes), the intensional part (deductive rules and integrity
rules) and the derived schema/stratification metadata, which is recomputed
lazily whenever the intensional part changes.

Integrity constraints are stored as *integrity rules* ``IcN <- L1 & ... & Ln``
exactly as the paper prescribes, and the **global inconsistency predicate**
``Ic`` (Section 5: ``Ic <- Ic1(x1)``, ..., ``Ic <- Icn(xn)``) is synthesised
on demand by :meth:`DeductiveDatabase.rules_with_global_ic`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Optional, Sequence

from repro.datalog.analysis import SchemaAnalysis, analyse_program, is_inconsistency_predicate
from repro.datalog.errors import (
    ArityError,
    SafetyError,
    UnknownPredicateError,
)
from repro.datalog.parser import IC_PREFIX, parse_program
from repro.datalog.rules import Atom, Literal, Rule
from repro.datalog.stratify import Stratification, stratify
from repro.datalog.terms import Constant, Term, Variable

#: The global inconsistency predicate of Section 5.
GLOBAL_IC = IC_PREFIX

Row = tuple[Constant, ...]


class Relation:
    """A stored base relation: a set of constant tuples plus column indexes.

    Indexes are built lazily per column on first indexed lookup and then
    maintained **incrementally** on add/discard: a single-row mutation
    patches the affected bucket of every live index instead of discarding
    them all, so the serving path's commit loop no longer forces an
    O(|relation|) rebuild on the next lookup.  :attr:`index_builds` counts
    from-scratch builds (steady state: one per probed column, ever).
    """

    __slots__ = ("name", "arity", "_rows", "_indexes", "index_builds")

    def __init__(self, name: str, arity: int):
        self.name = name
        self.arity = arity
        self._rows: set[Row] = set()
        self._indexes: dict[int, dict[Constant, set[Row]]] = {}
        self.index_builds = 0

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row: Row) -> bool:
        return row in self._rows

    def rows(self) -> frozenset[Row]:
        """A snapshot of the stored tuples."""
        return frozenset(self._rows)

    def add(self, row: Row) -> bool:
        """Insert a tuple; returns True when it was new."""
        if len(row) != self.arity:
            raise ArityError(
                f"{self.name}: tuple of length {len(row)}, arity is {self.arity}"
            )
        if row in self._rows:
            return False
        self._rows.add(row)
        for column, index in self._indexes.items():
            index.setdefault(row[column], set()).add(row)
        return True

    def discard(self, row: Row) -> bool:
        """Delete a tuple; returns True when it was present."""
        if row in self._rows:
            self._rows.discard(row)
            for column, index in self._indexes.items():
                bucket = index.get(row[column])
                if bucket is not None:
                    bucket.discard(row)
                    if not bucket:
                        del index[row[column]]
            return True
        return False

    def lookup(self, pattern: Sequence[Term]) -> Iterator[Row]:
        """Yield rows compatible with *pattern* (variables match anything).

        Picks the first constant-bound column as the index when one exists.
        """
        bound = [(i, t) for i, t in enumerate(pattern) if isinstance(t, Constant)]
        if not bound:
            yield from self._rows
            return
        column, key = bound[0]
        index = self._indexes.get(column)
        if index is None:
            index = {}
            for row in self._rows:
                index.setdefault(row[column], set()).add(row)
            self._indexes[column] = index
            self.index_builds += 1
        candidates = index.get(key, ())
        if len(bound) == 1:
            yield from candidates
            return
        rest = bound[1:]
        for row in candidates:
            if all(row[i] == t for i, t in rest):
                yield row


@dataclass(frozen=True)
class Schema:
    """Static metadata of a database: arities and the base/derived partition."""

    arities: Mapping[str, int]
    base: frozenset[str]
    derived: frozenset[str]

    def arity(self, predicate: str) -> int:
        """Arity of *predicate*; raises :class:`UnknownPredicateError`."""
        try:
            return self.arities[predicate]
        except KeyError:
            raise UnknownPredicateError(f"unknown predicate: {predicate}") from None

    def is_base(self, predicate: str) -> bool:
        """True for base (extensional) predicates."""
        return predicate in self.base

    def is_derived(self, predicate: str) -> bool:
        """True for derived (view/Ic/condition) predicates."""
        return predicate in self.derived


class DeductiveDatabase:
    """A deductive database ``D = (F, DR, IC)`` with mutation and querying.

    Facts live in :class:`Relation` objects; deductive rules and integrity
    rules are kept in insertion order.  Schema analysis, stratification and
    the global-``Ic`` expansion are cached and invalidated on any change to
    the intensional part.
    """

    def __init__(self) -> None:
        self._relations: dict[str, Relation] = {}
        self._rules: list[Rule] = []
        self._constraints: list[Rule] = []
        self._declared: dict[str, int] = {}
        self._cache_valid = False
        self._schema: Optional[Schema] = None
        self._analysis: Optional[SchemaAnalysis] = None
        self._stratification: Optional[Stratification] = None

    # -- construction -------------------------------------------------------

    @classmethod
    def from_source(cls, source: str) -> "DeductiveDatabase":
        """Build a database from concrete syntax (see the parser grammar)."""
        program = parse_program(source)
        return cls.from_components(
            facts=[(r.head.predicate, tuple(r.head.args)) for r in program.facts],
            rules=program.rules,
            constraints=program.constraints,
        )

    @classmethod
    def from_components(
        cls,
        facts: Iterable[tuple[str, tuple]] = (),
        rules: Iterable[Rule] = (),
        constraints: Iterable[Rule] = (),
    ) -> "DeductiveDatabase":
        """Build a database from pre-parsed pieces.

        ``facts`` are (predicate, args) pairs; args may be raw Python values,
        which are coerced to :class:`Constant`.
        """
        db = cls()
        for r in rules:
            db.add_rule(r)
        for r in constraints:
            db.add_constraint(r)
        for predicate, args in facts:
            db.add_fact(predicate, *args)
        db._validate()
        return db

    def copy(self) -> "DeductiveDatabase":
        """An independent copy (facts deep-copied, rules shared — immutable)."""
        clone = DeductiveDatabase()
        clone._rules = list(self._rules)
        clone._constraints = list(self._constraints)
        clone._declared = dict(self._declared)
        for name, relation in self._relations.items():
            fresh = Relation(name, relation.arity)
            for row in relation:
                fresh.add(row)
            clone._relations[name] = fresh
        return clone

    # -- schema -------------------------------------------------------------

    def declare_base(self, predicate: str, arity: int) -> None:
        """Pre-declare a base predicate (useful before any fact exists)."""
        existing = self._declared.get(predicate)
        if existing is not None and existing != arity:
            raise ArityError(
                f"predicate {predicate} redeclared with arity {arity}, was {existing}"
            )
        self._declared[predicate] = arity
        if predicate not in self._relations:
            self._relations[predicate] = Relation(predicate, arity)
        self._invalidate()

    def _invalidate(self) -> None:
        self._cache_valid = False

    def _validate(self) -> None:
        """Run the full static analysis (arities, allowedness, stratification)."""
        known = {name: rel.arity for name, rel in self._relations.items()}
        known.update(self._declared)
        all_rules = self.all_rules()
        self._analysis = analyse_program(all_rules, known_arities=known)
        for name in self._relations:
            if name in self._analysis.derived:
                raise SafetyError(
                    f"predicate {name} has stored facts but is defined by rules; "
                    f"the base/derived partition forbids this"
                )
        arities = {n: info.arity for n, info in self._analysis.predicates.items()}
        arities.update(known)
        derived = frozenset(self._analysis.derived)
        base = frozenset(set(arities) - set(derived))
        self._schema = Schema(arities, base, derived)
        self._stratification = stratify(all_rules, base_predicates=base)
        self._cache_valid = True

    def _ensure_valid(self) -> None:
        if not self._cache_valid:
            self._validate()

    @property
    def schema(self) -> Schema:
        """Current schema (recomputed lazily)."""
        self._ensure_valid()
        assert self._schema is not None
        return self._schema

    @property
    def stratification(self) -> Stratification:
        """Current stratification of DR ∪ IC."""
        self._ensure_valid()
        assert self._stratification is not None
        return self._stratification

    # -- intensional part ----------------------------------------------------

    @property
    def rules(self) -> tuple[Rule, ...]:
        """The deductive rules DR."""
        return tuple(self._rules)

    @property
    def constraints(self) -> tuple[Rule, ...]:
        """The integrity rules IC."""
        return tuple(self._constraints)

    def all_rules(self) -> list[Rule]:
        """DR followed by IC."""
        return [*self._rules, *self._constraints]

    def rules_with_global_ic(self) -> list[Rule]:
        """DR ∪ IC plus the synthesised ``Ic <- IcN(x)`` rules of Section 5."""
        extra: list[Rule] = []
        for constraint in self._constraints:
            head = constraint.head
            extra.append(Rule(Atom(GLOBAL_IC), (Literal(head, True),), label="global-ic"))
        deduped: list[Rule] = []
        seen: set[Rule] = set()
        for r in extra:
            if r not in seen:
                seen.add(r)
                deduped.append(r)
        return [*self._rules, *self._constraints, *deduped]

    def add_rule(self, r: Rule) -> None:
        """Add a deductive rule (facts are routed to the extensional part)."""
        if not r.body:
            if not r.head.is_ground():
                raise SafetyError(f"bodiless rule must be a ground fact: {r}")
            self.add_fact(r.head.predicate, *r.head.args)
            return
        if is_inconsistency_predicate(r.head.predicate):
            self.add_constraint(r)
            return
        self._rules.append(r)
        self._invalidate()

    def remove_rule(self, r: Rule) -> bool:
        """Remove a deductive rule; returns True when it was present."""
        try:
            self._rules.remove(r)
        except ValueError:
            return False
        self._invalidate()
        return True

    def add_constraint(self, r: Rule) -> None:
        """Add an integrity rule (head must be an ``Ic*`` predicate)."""
        if not is_inconsistency_predicate(r.head.predicate):
            raise SafetyError(
                f"integrity rule head must be an {IC_PREFIX}* predicate: {r}"
            )
        self._constraints.append(r)
        self._invalidate()

    def remove_constraint(self, r: Rule) -> bool:
        """Remove an integrity rule; returns True when it was present."""
        try:
            self._constraints.remove(r)
        except ValueError:
            return False
        self._invalidate()
        return True

    def rules_defining(self, predicate: str) -> tuple[Rule, ...]:
        """The definition of *predicate*: all rules with it in the head."""
        return tuple(r for r in self.all_rules() if r.head.predicate == predicate)

    # -- extensional part ----------------------------------------------------

    def _coerce_row(self, args: Iterable) -> Row:
        row = []
        for value in args:
            if isinstance(value, Constant):
                row.append(value)
            elif isinstance(value, Variable):
                raise SafetyError("facts must be ground; got a variable argument")
            else:
                row.append(Constant(value))
        return tuple(row)

    def _relation_for(self, predicate: str, arity: int) -> Relation:
        relation = self._relations.get(predicate)
        if relation is None:
            relation = Relation(predicate, arity)
            self._relations[predicate] = relation
            self._invalidate()
        return relation

    def add_fact(self, predicate: str, *args) -> bool:
        """Insert a base fact; returns True when it was new."""
        row = self._coerce_row(args)
        relation = self._relation_for(predicate, len(row))
        if self._cache_valid and self._schema is not None \
                and self._schema.is_derived(predicate):
            raise SafetyError(f"cannot store facts for derived predicate {predicate}")
        return relation.add(row)

    def remove_fact(self, predicate: str, *args) -> bool:
        """Delete a base fact; returns True when it was present."""
        row = self._coerce_row(args)
        relation = self._relations.get(predicate)
        if relation is None:
            return False
        return relation.discard(row)

    def has_fact(self, predicate: str, *args) -> bool:
        """Membership test on the extensional part."""
        relation = self._relations.get(predicate)
        if relation is None:
            return False
        return self._coerce_row(args) in relation

    def facts_of(self, predicate: str) -> frozenset[Row]:
        """All stored tuples of a base predicate (empty if none)."""
        relation = self._relations.get(predicate)
        return relation.rows() if relation is not None else frozenset()

    def lookup(self, predicate: str, pattern: Sequence[Term]) -> Iterator[Row]:
        """Indexed scan of a base relation under a term pattern."""
        relation = self._relations.get(predicate)
        if relation is None:
            return iter(())
        return relation.lookup(pattern)

    def count_of(self, predicate: str) -> int:
        """Stored tuple count (planner size estimates, no snapshot copy)."""
        relation = self._relations.get(predicate)
        return len(relation) if relation is not None else 0

    def index_build_count(self) -> int:
        """Total from-scratch column-index builds across all relations.

        Steady state under the incremental index maintenance of
        :class:`Relation` is one build per (relation, column) ever probed;
        commits must not bump this (see the planner's index-stats
        counters for the compiled engine's equivalent).
        """
        return sum(rel.index_builds for rel in self._relations.values())

    def base_predicates_with_facts(self) -> list[str]:
        """Names of relations that currently store at least one tuple."""
        return [name for name, rel in self._relations.items() if len(rel)]

    def fact_count(self) -> int:
        """Total number of stored tuples."""
        return sum(len(rel) for rel in self._relations.values())

    def iter_facts(self) -> Iterator[tuple[str, Row]]:
        """Iterate (predicate, row) over the whole extensional part."""
        for name, relation in self._relations.items():
            for row in relation:
                yield name, row

    def active_domain(self) -> frozenset[Constant]:
        """Constants occurring in facts or rules (the paper's finite domain)."""
        constants: set[Constant] = set()
        for _, row in self.iter_facts():
            constants.update(row)
        for r in self.all_rules():
            constants.update(r.constants())
        return frozenset(constants)

    # -- convenience ----------------------------------------------------------

    def query(self, goal: str) -> list[tuple]:
        """Answer a query in the current state, e.g. ``db.query("P(x)")``.

        Returns the list of answer rows as plain Python values (strings /
        ints) for the query's variables, in first-occurrence order; for a
        ground query the list is ``[()]`` when it holds and ``[]``
        otherwise.  Evaluation is bottom-up over DR ∪ IC (a fresh evaluator
        per call; for repeated querying hold a
        :class:`~repro.datalog.evaluation.BottomUpEvaluator`).
        """
        from repro.datalog.evaluation import BottomUpEvaluator
        from repro.datalog.parser import parse_atom

        target = parse_atom(goal)
        ordered: list[Variable] = []
        for term in target.args:
            if isinstance(term, Variable) and term not in ordered:
                ordered.append(term)
        evaluator = BottomUpEvaluator(self, self.all_rules())
        answers = []
        for bindings in evaluator.answers(target):
            answers.append(tuple(bindings[v].value for v in ordered))
        return sorted(set(answers), key=str)

    @classmethod
    def from_file(cls, path) -> "DeductiveDatabase":
        """Load a database from a source file (parser grammar)."""
        from pathlib import Path

        return cls.from_source(Path(path).read_text())

    def to_file(self, path) -> None:
        """Write the database out in parseable concrete syntax."""
        from pathlib import Path

        Path(path).write_text(str(self) + "\n")

    def __str__(self) -> str:
        lines = [f"{Atom(name, row)}." for name, row in sorted(
            self.iter_facts(), key=lambda pair: (pair[0], str(pair[1]))
        )]
        lines.extend(str(r) for r in self._rules)
        lines.extend(str(r) for r in self._constraints)
        return "\n".join(lines)
