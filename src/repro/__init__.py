"""repro -- the event-rule framework for deductive database updating problems.

A complete, executable reproduction of

    Ernest Teniente and Toni Urpí,
    "A Common Framework for Classifying and Specifying Deductive Database
    Updating Problems", ICDE 1995.

Layers (bottom-up):

- :mod:`repro.datalog` -- the deductive-database substrate (parser,
  stratified evaluation, top-down prover, storage);
- :mod:`repro.events` -- events, transition rules and event rules (§3);
- :mod:`repro.interpretations` -- the upward and downward interpretations
  (§4) plus the naive change-computation oracle;
- :mod:`repro.problems` -- every updating problem of §5 as a thin
  specification over the interpretations, and the Table 4.1 classification;
- :mod:`repro.core` -- the update-processing façade, materialized views,
  repair loops and schema updates;
- :mod:`repro.workloads` -- synthetic workload generators for benchmarks.

Quickstart::

    from repro import DeductiveDatabase, UpdateProcessor, parse_transaction

    db = DeductiveDatabase.from_source('''
        Q(A). Q(B). R(B).
        P(x) <- Q(x) & not R(x).
    ''')
    processor = UpdateProcessor(db)
    induced = processor.upward(parse_transaction("{delete R(B)}"))
    print(induced)          # {ιP(B)}   (Example 4.1)
"""

from repro.datalog import (
    Atom,
    Constant,
    DatalogError,
    DeductiveDatabase,
    Literal,
    Rule,
    Variable,
    parse_atom,
    parse_literal,
    parse_program,
    parse_rule,
)
from repro.events import (
    Event,
    EventCompiler,
    EventKind,
    Transaction,
    TransitionProgram,
    delete,
    insert,
    parse_transaction,
)
from repro.interpretations import (
    DownwardInterpreter,
    DownwardOptions,
    DownwardResult,
    Translation,
    UpwardInterpreter,
    UpwardOptions,
    UpwardResult,
    forbid_delete,
    forbid_insert,
    naive_changes,
    want_delete,
    want_insert,
)
from repro.core import (
    MaterializedViewStore,
    UpdateProcessor,
    apply_schema_update,
    repair_to_consistency,
)
from repro.problems import (
    ConditionChanges,
    ICCheckResult,
    RepairResult,
    render_table_4_1,
)
from repro.requests import (
    CheckRequest,
    CheckpointRequest,
    CommitRequest,
    DownwardRequest,
    HelloRequest,
    MonitorRequest,
    PingRequest,
    QueryRequest,
    RepairRequest,
    StatsRequest,
    UpdateRequest,
    UpwardRequest,
    WireFormatError,
)

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "CheckRequest",
    "CheckpointRequest",
    "CommitRequest",
    "ConditionChanges",
    "Constant",
    "DatalogError",
    "DeductiveDatabase",
    "DownwardInterpreter",
    "DownwardOptions",
    "DownwardRequest",
    "DownwardResult",
    "Event",
    "EventCompiler",
    "EventKind",
    "HelloRequest",
    "ICCheckResult",
    "Literal",
    "MaterializedViewStore",
    "MonitorRequest",
    "PingRequest",
    "QueryRequest",
    "RepairRequest",
    "RepairResult",
    "Rule",
    "StatsRequest",
    "Transaction",
    "TransitionProgram",
    "Translation",
    "UpdateProcessor",
    "UpdateRequest",
    "UpwardInterpreter",
    "UpwardOptions",
    "UpwardRequest",
    "UpwardResult",
    "Variable",
    "WireFormatError",
    "apply_schema_update",
    "delete",
    "forbid_delete",
    "forbid_insert",
    "insert",
    "naive_changes",
    "parse_atom",
    "parse_literal",
    "parse_program",
    "parse_rule",
    "parse_transaction",
    "render_table_4_1",
    "repair_to_consistency",
    "want_delete",
    "want_insert",
]
