"""Command-line driver for the update-processing system.

Usage (after ``pip install -e .``)::

    python -m repro table                         # print Table 4.1
    python -m repro describe db.dl                # transition & event rules
    python -m repro check db.dl -t "delete R(B)"  # integrity checking
    python -m repro upward db.dl -t "delete R(B)" # induced derived events
    python -m repro translate db.dl -r "ins P(B)" # view updating
    python -m repro repair db.dl                  # repair an inconsistent db
    python -m repro monitor db.dl -t "..." -c Cond1,Cond2

Database files use the parser grammar (see ``repro.datalog.parser``);
transactions use ``insert P(A), delete Q(B)``; requests use
``ins P(A)`` / ``del P(A)``, prefixed with ``not`` for negative requests.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core import UpdateProcessor, repair_to_consistency
from repro.datalog.database import DeductiveDatabase
from repro.datalog.errors import DatalogError
from repro.datalog.parser import parse_atom
from repro.datalog.rules import Atom, Literal
from repro.events.event_rules import EventCompiler
from repro.events.events import parse_transaction
from repro.events.naming import del_name, ins_name
from repro.problems import render_table_4_1


def _load(path: str) -> DeductiveDatabase:
    return DeductiveDatabase.from_source(Path(path).read_text())


def parse_request(text: str) -> Literal:
    """Parse ``"ins P(A)"`` / ``"del P(A)"`` / ``"not ins P(A)"``."""
    text = text.strip()
    positive = True
    if text.startswith("not "):
        positive = False
        text = text[4:].strip()
    if text.startswith("ins "):
        name_of = ins_name
        text = text[4:]
    elif text.startswith("del "):
        name_of = del_name
        text = text[4:]
    else:
        raise DatalogError(
            f"request must start with 'ins' or 'del' (optionally 'not'): {text!r}"
        )
    target = parse_atom(text.strip())
    return Literal(Atom(name_of(target.predicate), target.args), positive)


def _cmd_table(_: argparse.Namespace) -> int:
    print(render_table_4_1())
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    db = _load(args.database)
    program = EventCompiler(simplify=args.simplify).compile(db)
    print(program.describe())
    return 0


def _cmd_upward(args: argparse.Namespace) -> int:
    db = _load(args.database)
    processor = UpdateProcessor(db)
    transaction = parse_transaction(args.transaction)
    result = processor.upward(transaction)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(f"transaction {transaction} induces {result}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    db = _load(args.database)
    processor = UpdateProcessor(db)
    transaction = parse_transaction(args.transaction)
    result = processor.check(transaction)
    print(result)
    return 0 if result.ok else 1


def _cmd_translate(args: argparse.Namespace) -> int:
    db = _load(args.database)
    processor = UpdateProcessor(db)
    requests = [parse_request(piece) for piece in args.request]
    result = processor.downward(requests)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
        return 0 if result.is_satisfiable else 1
    if result.already_satisfied and not result.translations:
        print("already satisfied")
        return 0
    if not result.is_satisfiable:
        print("no translation")
        return 1
    for index, translation in enumerate(result.translations, start=1):
        print(f"{index}. {translation}")
    return 0


def _cmd_repair(args: argparse.Namespace) -> int:
    db = _load(args.database)
    result = repair_to_consistency(db, granularity=args.granularity)
    if not result.consistent:
        print(f"gave up after {result.rounds} rounds")
        return 1
    for index, transaction in enumerate(result.applied, start=1):
        print(f"round {index}: {transaction}")
    print(f"consistent after {result.rounds} round(s)")
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    db = _load(args.database)
    processor = UpdateProcessor(db)
    transaction = parse_transaction(args.transaction)
    conditions = [c.strip() for c in args.conditions.split(",") if c.strip()]
    changes = processor.monitor(transaction, conditions)
    print(changes)
    return 0


REPL_HELP = """commands:
  ? <atom>                 query, e.g. ? Unemp(x)
  + <atom>                 insert a base fact (integrity-checked)
  - <atom>                 delete a base fact (integrity-checked)
  apply <transaction>      e.g. apply insert A(X), delete B(Y)
  check <transaction>      integrity-check without applying
  translate <request>      e.g. translate del Unemp(Dolors)
  undo                     roll back the last applied transaction
  rules | facts | table    inspect the database / the classification
  help | quit
"""


def _cmd_repl(args: argparse.Namespace) -> int:
    """An interactive session over a database file."""
    from repro.core.history import Journal
    from repro.events.events import Event, Transaction
    from repro.events.naming import EventKind

    db = _load(args.database)
    processor = UpdateProcessor(db)
    journal = Journal(db)
    print(f"loaded {args.database}: {db.fact_count()} facts, "
          f"{len(db.rules)} rules, {len(db.constraints)} constraints")
    print("type 'help' for commands")

    def apply_checked(transaction: Transaction) -> None:
        if db.constraints and processor.is_consistent():
            verdict = processor.check(transaction)
            if not verdict.ok:
                print(f"rejected: {verdict}")
                return
        journal.commit(transaction)
        processor.refresh()
        print(f"applied {transaction}")

    while True:
        try:
            line = input("repro> ").strip()
        except EOFError:
            break
        if not line:
            continue
        try:
            if line in ("quit", "exit"):
                break
            elif line == "help":
                print(REPL_HELP, end="")
            elif line == "table":
                print(render_table_4_1())
            elif line == "rules":
                for rule_ in db.all_rules():
                    print(f"  {rule_}")
            elif line == "facts":
                for predicate, row in sorted(db.iter_facts(),
                                             key=lambda p: (p[0], str(p[1]))):
                    rendered = ", ".join(str(t) for t in row)
                    print(f"  {predicate}({rendered})" if row else f"  {predicate}")
            elif line.startswith("?"):
                for row in db.query(line[1:].strip()):
                    print(f"  {row}")
            elif line.startswith("+") or line.startswith("-"):
                target = parse_atom(line[1:].strip())
                kind = EventKind.INSERTION if line[0] == "+" \
                    else EventKind.DELETION
                apply_checked(Transaction(
                    [Event(kind, target.predicate, tuple(target.args))]))
            elif line.startswith("apply "):
                apply_checked(parse_transaction(line[len("apply "):]))
            elif line.startswith("check "):
                print(processor.check(parse_transaction(line[len("check "):])))
            elif line.startswith("translate "):
                pieces = line[len("translate "):].split(";")
                result = processor.downward(
                    [parse_request(piece) for piece in pieces])
                if not result.is_satisfiable:
                    print("no translation")
                for index, translation in enumerate(result.translations, 1):
                    print(f"  {index}. {translation}")
            elif line == "undo":
                undone = journal.undo()
                processor.refresh()
                print(f"undid {undone[0].transaction}")
            else:
                print(f"unknown command: {line!r} (try 'help')")
        except DatalogError as error:
            print(f"error: {error}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Deductive database updating problems via event rules "
                    "(Teniente & Urpí, ICDE 1995).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("table", help="print Table 4.1").set_defaults(run=_cmd_table)

    describe = commands.add_parser("describe",
                                   help="print transition and event rules")
    describe.add_argument("database")
    describe.add_argument("--simplify", action="store_true")
    describe.set_defaults(run=_cmd_describe)

    upward = commands.add_parser("upward", help="induced derived events")
    upward.add_argument("database")
    upward.add_argument("-t", "--transaction", required=True)
    upward.add_argument("--json", action="store_true",
                        help="machine-readable output")
    upward.set_defaults(run=_cmd_upward)

    check = commands.add_parser("check", help="integrity checking (5.1.1)")
    check.add_argument("database")
    check.add_argument("-t", "--transaction", required=True)
    check.set_defaults(run=_cmd_check)

    translate = commands.add_parser(
        "translate", help="view updating / downward interpretation")
    translate.add_argument("database")
    translate.add_argument("-r", "--request", action="append", required=True,
                           help="e.g. 'ins P(B)' (repeatable)")
    translate.add_argument("--json", action="store_true",
                           help="machine-readable output")
    translate.set_defaults(run=_cmd_translate)

    repair = commands.add_parser("repair", help="repair an inconsistent database")
    repair.add_argument("database")
    repair.add_argument("--granularity", choices=["violation", "global"],
                        default="violation")
    repair.set_defaults(run=_cmd_repair)

    monitor = commands.add_parser("monitor", help="condition monitoring (5.1.2)")
    monitor.add_argument("database")
    monitor.add_argument("-t", "--transaction", required=True)
    monitor.add_argument("-c", "--conditions", required=True,
                         help="comma-separated condition predicates")
    monitor.set_defaults(run=_cmd_monitor)

    repl = commands.add_parser("repl", help="interactive session")
    repl.add_argument("database")
    repl.set_defaults(run=_cmd_repl)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.run(args)
    except (DatalogError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
