"""Command-line driver for the update-processing system.

Usage (after ``pip install -e .``)::

    python -m repro table                         # print Table 4.1
    python -m repro describe db.dl                # transition & event rules
    python -m repro check db.dl -t "delete R(B)"  # integrity checking
    python -m repro upward db.dl -t "delete R(B)" # induced derived events
    python -m repro translate db.dl -r "ins P(B)" # view updating
    python -m repro repair db.dl                  # repair an inconsistent db
    python -m repro monitor db.dl -t "..." -c Cond1,Cond2
    python -m repro serve data/ --init db.dl      # TCP update server
    python -m repro call query "Unemp(x)" --port 7407

Database files use the parser grammar (see ``repro.datalog.parser``);
transactions use ``insert P(A), delete Q(B)``; requests use
``ins P(A)`` / ``del P(A)``, prefixed with ``not`` for negative requests.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core import UpdateProcessor, repair_to_consistency
from repro.datalog.database import DeductiveDatabase
from repro.datalog.errors import DatalogError
from repro.datalog.parser import parse_atom
from repro.events.event_rules import EventCompiler
from repro.events.events import parse_transaction
from repro.events.requests import parse_request  # noqa: F401 - re-exported API
from repro.problems import render_table_4_1
from repro.requests import UpdateRequest


def _load(path: str) -> DeductiveDatabase:
    return DeductiveDatabase.from_source(Path(path).read_text())


def _cmd_table(_: argparse.Namespace) -> int:
    print(render_table_4_1())
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    db = _load(args.database)
    program = EventCompiler(simplify=args.simplify).compile(db)
    print(program.describe())
    return 0


def _cmd_upward(args: argparse.Namespace) -> int:
    db = _load(args.database)
    processor = UpdateProcessor(db)
    transaction = parse_transaction(args.transaction)
    result = processor.upward(transaction)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(f"transaction {transaction} induces {result}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    db = _load(args.database)
    processor = UpdateProcessor(db)
    transaction = parse_transaction(args.transaction)
    result = processor.check(transaction)
    print(result)
    return 0 if result.ok else 1


def _cmd_translate(args: argparse.Namespace) -> int:
    db = _load(args.database)
    processor = UpdateProcessor(db)
    requests = [parse_request(piece) for piece in args.request]
    result = processor.downward(requests)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
        return 0 if result.is_satisfiable else 1
    if result.already_satisfied and not result.translations:
        print("already satisfied")
        return 0
    if not result.is_satisfiable:
        print("no translation")
        return 1
    for index, translation in enumerate(result.translations, start=1):
        print(f"{index}. {translation}")
    return 0


def _cmd_repair(args: argparse.Namespace) -> int:
    db = _load(args.database)
    result = repair_to_consistency(db, granularity=args.granularity)
    if not result.consistent:
        print(f"gave up after {result.rounds} rounds")
        return 1
    for index, transaction in enumerate(result.applied, start=1):
        print(f"round {index}: {transaction}")
    print(f"consistent after {result.rounds} round(s)")
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    db = _load(args.database)
    processor = UpdateProcessor(db)
    transaction = parse_transaction(args.transaction)
    conditions = [c.strip() for c in args.conditions.split(",") if c.strip()]
    changes = processor.monitor(transaction, conditions)
    print(changes)
    return 0


REPL_HELP = """commands:
  ? <atom>                 query, e.g. ? Unemp(x)
  + <atom>                 insert a base fact (integrity-checked)
  - <atom>                 delete a base fact (integrity-checked)
  apply <transaction>      e.g. apply insert A(X), delete B(Y)
  check <transaction>      integrity-check without applying
  translate <request>      e.g. translate del Unemp(Dolors)
  undo                     roll back the last applied transaction
  rules | facts | table    inspect the database / the classification
  help | quit
"""


def _cmd_repl(args: argparse.Namespace) -> int:
    """An interactive session over a database file."""
    from repro.core.history import Journal
    from repro.events.events import Event, Transaction
    from repro.events.naming import EventKind
    from repro.server.engine import checked_commit

    db = _load(args.database)
    processor = UpdateProcessor(db)
    journal = Journal(db)
    print(f"loaded {args.database}: {db.fact_count()} facts, "
          f"{len(db.rules)} rules, {len(db.constraints)} constraints")
    print("type 'help' for commands")

    def apply_checked(transaction: Transaction) -> None:
        # The same checked-commit path the server protocol uses, so REPL
        # and server semantics cannot drift.
        outcome = checked_commit(processor, transaction, journal.commit)
        if outcome.applied:
            print(f"applied {outcome.effective}")
        else:
            print(f"rejected: {outcome.check}")

    while True:
        try:
            line = input("repro> ").strip()
        except EOFError:
            break
        if not line:
            continue
        try:
            if line in ("quit", "exit"):
                break
            elif line == "help":
                print(REPL_HELP, end="")
            elif line == "table":
                print(render_table_4_1())
            elif line == "rules":
                for rule_ in db.all_rules():
                    print(f"  {rule_}")
            elif line == "facts":
                for predicate, row in sorted(db.iter_facts(),
                                             key=lambda p: (p[0], str(p[1]))):
                    rendered = ", ".join(str(t) for t in row)
                    print(f"  {predicate}({rendered})" if row else f"  {predicate}")
            elif line.startswith("?"):
                for row in db.query(line[1:].strip()):
                    print(f"  {row}")
            elif line.startswith("+") or line.startswith("-"):
                target = parse_atom(line[1:].strip())
                kind = EventKind.INSERTION if line[0] == "+" \
                    else EventKind.DELETION
                apply_checked(Transaction(
                    [Event(kind, target.predicate, tuple(target.args))]))
            elif line.startswith("apply "):
                apply_checked(parse_transaction(line[len("apply "):]))
            elif line.startswith("check "):
                print(processor.check(parse_transaction(line[len("check "):])))
            elif line.startswith("translate "):
                pieces = line[len("translate "):].split(";")
                result = processor.downward(
                    [parse_request(piece) for piece in pieces])
                if not result.is_satisfiable:
                    print("no translation")
                for index, translation in enumerate(result.translations, 1):
                    print(f"  {index}. {translation}")
            elif line == "undo":
                undone = journal.undo()
                processor.refresh()
                print(f"undid {undone[0].transaction}")
            else:
                print(f"unknown command: {line!r} (try 'help')")
        except DatalogError as error:
            print(f"error: {error}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the TCP update server over a durable data directory."""
    from repro.obs import tracer as obs
    from repro.server import DatabaseEngine
    from repro.server.server import run

    if args.trace:
        obs.enable()
    initial = _load(args.init) if args.init else None
    engine = DatabaseEngine.open(args.directory, initial=initial,
                                 max_batch=args.max_batch,
                                 on_violation=args.on_violation,
                                 cache_mode=args.cache_mode,
                                 eval_engine=args.eval_engine,
                                 dedup_capacity=args.dedup_capacity)
    if args.routing:
        # A shard of a partitioned group: the routing table is the durable
        # schema record (this shard's snapshot only renders predicates it
        # holds facts or rules for), so redeclare every routed predicate.
        from repro.shard import RoutingTable

        for predicate, arity in RoutingTable.load(args.routing).arities.items():
            engine.db.declare_base(predicate, arity)
    run(engine, host=args.host, port=args.port, port_file=args.port_file,
        max_connections=args.max_connections,
        max_inflight=args.max_inflight,
        request_timeout=args.timeout,
        checkpoint_on_shutdown=not args.no_checkpoint,
        slow_op_threshold=args.slow_op_threshold)
    return 0


def _parse_pins(pins: list[str] | None) -> dict[str, int]:
    """Parse repeated ``--pin PRED=SHARD`` flags into a placement map."""
    placements: dict[str, int] = {}
    for piece in pins or ():
        name, _, index = piece.partition("=")
        if not name or not index.isdigit():
            raise DatalogError(
                f"--pin expects PREDICATE=SHARD_INDEX, got {piece!r}")
        placements[name] = int(index)
    return placements


def _cmd_shard_serve(args: argparse.Namespace) -> int:
    """Serve an in-process shard group (scatter-gather + 2PC) over TCP."""
    from repro.obs import tracer as obs
    from repro.server.server import run
    from repro.shard import EngineGroup

    if args.trace:
        obs.enable()
    initial = _load(args.init) if args.init else None
    group = EngineGroup.open(args.directory, initial=initial,
                             shards=args.shards,
                             pinned=_parse_pins(args.pin),
                             max_batch=args.max_batch,
                             on_violation=args.on_violation,
                             cache_mode=args.cache_mode,
                             eval_engine=args.eval_engine,
                             dedup_capacity=args.dedup_capacity)
    run(group, host=args.host, port=args.port, port_file=args.port_file,
        max_connections=args.max_connections,
        max_inflight=args.max_inflight,
        request_timeout=args.timeout,
        checkpoint_on_shutdown=not args.no_checkpoint,
        slow_op_threshold=args.slow_op_threshold)
    return 0


def _parse_endpoint(text: str) -> tuple[str, int]:
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise DatalogError(f"--shard expects HOST:PORT, got {text!r}")
    return host, int(port)


def _cmd_route(args: argparse.Namespace) -> int:
    """Serve a scatter-gather router over running shard servers."""
    from repro.server.server import run
    from repro.shard import (
        DECISIONS_NAME,
        ROUTING_NAME,
        DecisionLog,
        RoutingTable,
        ShardRouter,
    )

    directory = Path(args.directory)
    routing = RoutingTable.load(directory / ROUTING_NAME)
    decisions = DecisionLog(directory / DECISIONS_NAME)
    router = ShardRouter([_parse_endpoint(piece) for piece in args.shard],
                         routing, decisions,
                         timeout=args.timeout,
                         max_attempts=args.retries)
    run(router, host=args.host, port=args.port, port_file=args.port_file,
        max_connections=args.max_connections,
        request_timeout=args.timeout,
        checkpoint_on_shutdown=False,
        slow_op_threshold=args.slow_op_threshold)
    return 0


def _request_params(args: argparse.Namespace) -> dict:
    """Build the wire params of one op from ``call``/``trace`` flags."""
    params: dict = {}
    if args.op == "query":
        if not args.argument:
            raise DatalogError("query needs a goal, e.g.: repro call query 'P(x)'")
        params["goal"] = args.argument
    elif args.op == "prepare":
        transaction = args.transaction or args.argument
        if not transaction or not getattr(args, "txn_id", None):
            raise DatalogError("prepare needs a transaction (-t) and --txn-id")
        params["transaction"] = transaction
        params["txn_id"] = args.txn_id
    elif args.op == "decide":
        if not args.argument or not getattr(args, "txn_id", None):
            raise DatalogError("decide needs --txn-id and a decision "
                               "('commit' or 'abort'), e.g.: "
                               "repro call decide commit --txn-id ID")
        params["txn_id"] = args.txn_id
        params["decision"] = args.argument
    elif args.op in ("commit", "check", "upward", "monitor"):
        transaction = args.transaction or args.argument
        if not transaction:
            raise DatalogError(f"{args.op} needs a transaction (-t or positional)")
        params["transaction"] = transaction
        if args.op == "monitor":
            if not args.conditions:
                raise DatalogError("monitor needs -c CONDITIONS")
            params["conditions"] = [c.strip() for c in args.conditions.split(",")
                                    if c.strip()]
        if args.op == "commit" and getattr(args, "on_violation", None):
            params["on_violation"] = args.on_violation
        if args.op == "commit" and getattr(args, "txn_id", None):
            params["txn_id"] = args.txn_id
    elif args.op == "downward":
        requests = args.request or (
            [r for r in args.argument.split(";") if r.strip()]
            if args.argument else [])
        if not requests:
            raise DatalogError("downward needs requests (-r or positional, "
                               "';'-separated)")
        params["requests"] = requests
    elif args.op == "subscribe":
        goals = list(getattr(args, "goals", None) or [])
        if args.argument:
            goals.append(args.argument)
        if not goals:
            raise DatalogError("subscribe needs goals (-g or positional), "
                               "e.g.: repro call subscribe Unemp")
        params["goals"] = goals
    elif args.op == "unsubscribe":
        if not args.argument:
            raise DatalogError("unsubscribe needs a subscription id, e.g.: "
                               "repro call unsubscribe sub-1")
        params["subscription_id"] = args.argument
    return params


def _cmd_call_follow(args: argparse.Namespace, params: dict,
                     resilient: bool) -> int:
    """``repro call subscribe --follow``: stream frames as JSON lines.

    The resilient path re-subscribes across reconnects and surfaces seq
    gaps as synthetic resync frames; the plain path prints the raw pushed
    payloads (including ``seq``) until the limit or the connection ends.
    """
    goals = params["goals"]
    limit = args.max_frames
    printed = 0
    try:
        if resilient:
            from repro.server.resilient import ResilientClient

            with ResilientClient(
                    args.host, args.port,
                    max_attempts=(args.retries if args.retries is not None
                                  else 5),
                    deadline=args.deadline) as client:
                for frame in client.subscribe(goals):
                    print(json.dumps(frame), flush=True)
                    printed += 1
                    if limit is not None and printed >= limit:
                        break
        else:
            from repro.server.client import DatabaseClient

            with DatabaseClient(args.host, args.port,
                                handshake=False) as client:
                info = client.subscribe(goals)
                print(json.dumps(info), flush=True)
                while limit is None or printed < limit:
                    print(json.dumps(client.next_frame()), flush=True)
                    printed += 1
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_call(args: argparse.Namespace) -> int:
    """Send one request to a running server and print the JSON result."""
    params = _request_params(args)
    resilient = (args.retries is not None or args.deadline is not None
                 or args.router)
    if args.op == "subscribe" and getattr(args, "follow", False):
        return _cmd_call_follow(args, params, resilient)
    if resilient:
        # The self-healing path: reconnects, jittered backoff, a deadline
        # budget the server enforces too, and auto txn_id stamping so
        # retried commits are exactly-once.
        from repro.server.resilient import ResilientClient

        client_cm = ResilientClient(
            args.host, args.port,
            max_attempts=args.retries if args.retries is not None else 5,
            deadline=args.deadline)
    else:
        from repro.server.client import DatabaseClient

        client_cm = DatabaseClient(args.host, args.port, handshake=False)
    with client_cm as client:
        if args.op == "shutdown":  # control op: the server intercepts it
            result = client.call("shutdown")
        else:
            result = client.send(UpdateRequest.of(args.op, params))
    print(json.dumps(result, indent=2))
    if args.op == "check":
        return 0 if result.get("ok") else 1
    if args.op == "commit":
        return 0 if result.get("applied") else 1
    if args.op == "downward":
        return 0 if result.get("satisfiable") else 1
    if args.op == "health":
        return 0 if result.get("ready") else 1
    return 0


def _trace_result_payload(result) -> object:
    """A JSON-ready rendering of one traced op's result."""
    if hasattr(result, "to_dict"):
        return result.to_dict()
    if isinstance(result, list):  # query answers (rows of constants)
        return [[getattr(value, "value", value) for value in row]
                for row in result]
    return str(result)


def _cmd_trace(args: argparse.Namespace) -> int:
    """Run one op locally under a scoped tracer and print the breakdown."""
    from repro.obs import tracer as obs

    db = _load(args.database)
    processor = UpdateProcessor(db)
    request = UpdateRequest.of(args.op, _request_params(args))
    with obs.use() as tracer:
        with tracer.span(f"request.{args.op}"):
            result = request.run(processor)
    root = tracer.last_root
    if args.json:
        print(json.dumps({
            "result": _trace_result_payload(result),
            "trace": root.to_dict() if root is not None else {},
            "aggregates": tracer.aggregates(),
        }, indent=2))
    else:
        print(result)
        if root is not None:
            print()
            print(obs.format_span(root))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Deductive database updating problems via event rules "
                    "(Teniente & Urpí, ICDE 1995).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("table", help="print Table 4.1").set_defaults(run=_cmd_table)

    describe = commands.add_parser("describe",
                                   help="print transition and event rules")
    describe.add_argument("database")
    describe.add_argument("--simplify", action="store_true")
    describe.set_defaults(run=_cmd_describe)

    upward = commands.add_parser("upward", help="induced derived events")
    upward.add_argument("database")
    upward.add_argument("-t", "--transaction", required=True)
    upward.add_argument("--json", action="store_true",
                        help="machine-readable output")
    upward.set_defaults(run=_cmd_upward)

    check = commands.add_parser("check", help="integrity checking (5.1.1)")
    check.add_argument("database")
    check.add_argument("-t", "--transaction", required=True)
    check.set_defaults(run=_cmd_check)

    translate = commands.add_parser(
        "translate", help="view updating / downward interpretation")
    translate.add_argument("database")
    translate.add_argument("-r", "--request", action="append", required=True,
                           help="e.g. 'ins P(B)' (repeatable)")
    translate.add_argument("--json", action="store_true",
                           help="machine-readable output")
    translate.set_defaults(run=_cmd_translate)

    repair = commands.add_parser("repair", help="repair an inconsistent database")
    repair.add_argument("database")
    repair.add_argument("--granularity", choices=["violation", "global"],
                        default="violation")
    repair.set_defaults(run=_cmd_repair)

    monitor = commands.add_parser("monitor", help="condition monitoring (5.1.2)")
    monitor.add_argument("database")
    monitor.add_argument("-t", "--transaction", required=True)
    monitor.add_argument("-c", "--conditions", required=True,
                         help="comma-separated condition predicates")
    monitor.set_defaults(run=_cmd_monitor)

    repl = commands.add_parser("repl", help="interactive session")
    repl.add_argument("database")
    repl.set_defaults(run=_cmd_repl)

    serve = commands.add_parser(
        "serve", help="serve a durable database over TCP (JSON lines)")
    serve.add_argument("directory", help="durable data directory")
    serve.add_argument("--init", metavar="DB_FILE",
                       help="seed a fresh directory from a database file")
    serve.add_argument("--routing", metavar="ROUTING_JSON",
                       help="serve as one shard of a partitioned group: "
                            "redeclare every predicate in this routing "
                            "table so sparsely-populated shards keep the "
                            "full schema")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7407)
    serve.add_argument("--port-file", metavar="PATH",
                       help="write the bound port here once listening "
                            "(use with --port 0)")
    serve.add_argument("--max-batch", type=int, default=64,
                       help="group-commit width (default 64)")
    serve.add_argument("--max-connections", type=int, default=64)
    serve.add_argument("--max-inflight", type=int, default=None,
                       help="in-flight request budget before shedding with "
                            "'overloaded' (default: 4x the worker pool)")
    serve.add_argument("--dedup-capacity", type=int, default=None,
                       help="bound on remembered txn_id outcomes "
                            "(exactly-once window; default 4096)")
    serve.add_argument("--timeout", type=float, default=30.0,
                       help="per-request timeout in seconds")
    serve.add_argument("--on-violation", default="reject",
                       choices=["reject", "maintain", "ignore"],
                       help="default commit policy")
    serve.add_argument("--cache-mode", default="advance",
                       choices=["advance", "invalidate", "counting"],
                       help="derived-state maintenance across commits: "
                            "advance (default) patches warm caches, "
                            "invalidate drops them, counting maintains "
                            "derivation counts incrementally (docs/IVM.md)")
    serve.add_argument("--eval-engine", default=None,
                       choices=["compiled", "interpreted"],
                       help="bottom-up evaluation engine for checks and "
                            "interpretations: compiled join plans (default) "
                            "or the tuple-at-a-time interpreter "
                            "(docs/EVALUATION.md)")
    serve.add_argument("--no-checkpoint", action="store_true",
                       help="skip the WAL checkpoint on shutdown")
    serve.add_argument("--trace", action="store_true",
                       help="enable execution tracing (span aggregates show "
                            "up in 'stats')")
    serve.add_argument("--slow-op-threshold", type=float, metavar="SECONDS",
                       help="log requests slower than this at WARNING")
    serve.set_defaults(run=_cmd_serve)

    shard_serve = commands.add_parser(
        "shard-serve",
        help="serve a partitioned engine group (scatter-gather + 2PC)")
    shard_serve.add_argument("directory", help="group data directory "
                             "(one subdirectory per shard)")
    shard_serve.add_argument("--shards", type=int, default=2,
                             help="number of shards for a fresh group "
                                  "(reopen reads routing.json; default 2)")
    shard_serve.add_argument("--init", metavar="DB_FILE",
                             help="seed a fresh group from a database file")
    shard_serve.add_argument("--pin", action="append", metavar="PRED=SHARD",
                             help="pin a predicate to one shard instead of "
                                  "hash partitioning (repeatable)")
    shard_serve.add_argument("--host", default="127.0.0.1")
    shard_serve.add_argument("--port", type=int, default=7407)
    shard_serve.add_argument("--port-file", metavar="PATH",
                             help="write the bound port here once listening "
                                  "(use with --port 0)")
    shard_serve.add_argument("--max-batch", type=int, default=64)
    shard_serve.add_argument("--max-connections", type=int, default=64)
    shard_serve.add_argument("--max-inflight", type=int, default=None)
    shard_serve.add_argument("--dedup-capacity", type=int, default=None)
    shard_serve.add_argument("--timeout", type=float, default=30.0)
    shard_serve.add_argument("--on-violation", default="reject",
                             choices=["reject", "maintain", "ignore"])
    shard_serve.add_argument("--cache-mode", default="advance",
                             choices=["advance", "invalidate", "counting"])
    shard_serve.add_argument("--eval-engine", default=None,
                             choices=["compiled", "interpreted"])
    shard_serve.add_argument("--no-checkpoint", action="store_true")
    shard_serve.add_argument("--trace", action="store_true")
    shard_serve.add_argument("--slow-op-threshold", type=float,
                             metavar="SECONDS")
    shard_serve.set_defaults(run=_cmd_shard_serve)

    route = commands.add_parser(
        "route", help="serve a scatter-gather router over shard servers")
    route.add_argument("directory",
                       help="directory holding routing.json; the 2PC "
                            "decision log lives here too")
    route.add_argument("--shard", action="append", required=True,
                       metavar="HOST:PORT",
                       help="shard server endpoint, one per shard in "
                            "shard-index order (repeatable)")
    route.add_argument("--host", default="127.0.0.1")
    route.add_argument("--port", type=int, default=7408)
    route.add_argument("--port-file", metavar="PATH")
    route.add_argument("--max-connections", type=int, default=64)
    route.add_argument("--timeout", type=float, default=30.0,
                       help="per-request timeout, also used toward shards")
    route.add_argument("--retries", type=int, default=5,
                       help="attempts per shard call (resilient client)")
    route.add_argument("--slow-op-threshold", type=float, metavar="SECONDS")
    route.set_defaults(run=_cmd_route)

    call = commands.add_parser(
        "call", help="send one request to a running server")
    call.add_argument("op", choices=[
        "ping", "hello", "query", "upward", "check", "monitor", "downward",
        "repair", "commit", "prepare", "decide", "stats", "checkpoint",
        "health", "shutdown", "subscribe", "unsubscribe"])
    call.add_argument("argument", nargs="?",
                      help="query goal / transaction / ';'-separated requests")
    call.add_argument("--host", default="127.0.0.1")
    call.add_argument("--port", type=int, required=True)
    call.add_argument("-t", "--transaction")
    call.add_argument("-r", "--request", action="append",
                      help="downward request, e.g. 'ins P(B)' (repeatable)")
    call.add_argument("-c", "--conditions",
                      help="comma-separated condition predicates (monitor)")
    call.add_argument("--on-violation",
                      choices=["reject", "maintain", "ignore"])
    call.add_argument("--txn-id", dest="txn_id", metavar="ID",
                      help="idempotency key for commit (retries with the "
                           "same id return the recorded outcome)")
    call.add_argument("--retries", type=int, default=None, metavar="N",
                      help="retry through the resilient client, at most N "
                           "attempts (commits are auto-stamped with txn_ids)")
    call.add_argument("--deadline", type=float, default=None,
                      metavar="SECONDS",
                      help="per-call deadline budget, propagated to the "
                           "server (implies the resilient client)")
    call.add_argument("--router", action="store_true",
                      help="the target is a shard router: use the resilient "
                           "client so transient 'unavailable' shards are "
                           "retried")
    call.add_argument("-g", "--goals", action="append", metavar="GOAL",
                      help="subscription goal, a derived predicate or bound "
                           "atom like 'Unemp(Maria)' (repeatable)")
    call.add_argument("--follow", action="store_true",
                      help="with subscribe: keep the connection open and "
                           "print each pushed frame as a JSON line")
    call.add_argument("--max-frames", type=int, default=None, metavar="N",
                      help="with --follow: exit after N frames")
    call.set_defaults(run=_cmd_call)

    trace = commands.add_parser(
        "trace", help="run one op locally with execution tracing")
    trace.add_argument("op", choices=[
        "query", "upward", "check", "monitor", "downward", "repair",
        "commit"])
    trace.add_argument("database")
    trace.add_argument("argument", nargs="?",
                       help="query goal / transaction / ';'-separated requests")
    trace.add_argument("-t", "--transaction")
    trace.add_argument("-r", "--request", action="append",
                       help="downward request, e.g. 'ins P(B)' (repeatable)")
    trace.add_argument("-c", "--conditions",
                       help="comma-separated condition predicates (monitor)")
    trace.add_argument("--on-violation",
                       choices=["reject", "maintain", "ignore"])
    trace.add_argument("--json", action="store_true",
                       help="machine-readable result + trace + aggregates")
    trace.set_defaults(run=_cmd_trace)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.run(args)
    except (DatalogError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
