"""Execution tracing: a context-var span stack with a no-op fast path.

The interpretations are search/fixpoint procedures whose cost structure --
transition-rule expansion, stratum-by-stratum evaluation, downward
branching, group-commit batching -- is invisible from wall-clock timings
alone.  This module gives every stage a *span*: a named, timed scope
carrying numeric counters (rows derived, delta sizes, search nodes, fsync
latency).  Spans nest through a :class:`contextvars.ContextVar`, so
concurrent engine writers each see their own stack.

Tracing is off by default and costs ~nothing when off:
:func:`span` returns a shared no-op context manager without allocating,
and :func:`add` is a dict lookup plus a falsy check.  Instrumented code is
therefore free to call these unconditionally on every stage boundary (but
must keep them *off* per-tuple hot loops; guard any expensive attribute
computation with :func:`enabled`).

Enable tracing with :func:`enable`, or scoped with :func:`use`::

    with obs.use() as tracer:
        processor.upward(transaction)
    print(tracer.aggregates()["spans"]["eval.stratum"]["count"])

Setting the ``REPRO_TRACE`` environment variable (to anything non-empty)
enables a process-wide tracer at import time -- the hook used by the CI
benchmark smoke job and ``repro serve --trace``.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

from repro.obs.histogram import LATENCY_BUCKETS, LatencyHistogram


class Span:
    """One timed, named scope with numeric counters and nested children."""

    __slots__ = ("name", "attributes", "counters", "children", "elapsed",
                 "_start")

    def __init__(self, name: str, attributes: dict | None = None):
        self.name = name
        self.attributes: dict = attributes or {}
        self.counters: dict[str, float] = {}
        self.children: list[Span] = []
        self.elapsed: float = 0.0
        self._start: float = 0.0

    def set(self, **attributes) -> None:
        """Attach descriptive attributes (not aggregated, shown per trace)."""
        self.attributes.update(attributes)

    def add(self, counter: str, amount: float = 1) -> None:
        """Bump a numeric counter (summed into the tracer's aggregates)."""
        self.counters[counter] = self.counters.get(counter, 0) + amount

    def to_dict(self) -> dict:
        """A JSON-ready representation of this span's subtree."""
        payload: dict = {"name": self.name,
                         "seconds": round(self.elapsed, 6)}
        if self.attributes:
            payload["attributes"] = {k: _jsonable(v)
                                     for k, v in self.attributes.items()}
        if self.counters:
            payload["counters"] = dict(sorted(self.counters.items()))
        if self.children:
            payload["children"] = [child.to_dict() for child in self.children]
        return payload


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple, set, frozenset)):
        return sorted(str(v) for v in value)
    return str(value)


class _NullSpan:
    """The shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()
    name = ""
    elapsed = 0.0

    def set(self, **attributes) -> None:
        pass

    def add(self, counter: str, amount: float = 1) -> None:
        pass

    def to_dict(self) -> dict:
        return {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


#: The singleton returned by :func:`span` when tracing is disabled.
NULL_SPAN = _NullSpan()

#: Per-context stack of open spans (a tuple: cheap to extend, never shared
#: mutably across contexts).  Threads each start from the empty default.
_stack: ContextVar[tuple] = ContextVar("repro_obs_spans", default=())


class _SpanScope:
    """Context manager for one live span (only allocated while enabled)."""

    __slots__ = ("_tracer", "_span", "_token")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span
        self._token = None

    def __enter__(self) -> Span:
        self._token = _stack.set(_stack.get() + (self._span,))
        self._span._start = time.perf_counter()
        return self._span

    def __exit__(self, *exc_info) -> bool:
        span = self._span
        span.elapsed = time.perf_counter() - span._start
        if self._token is not None:
            _stack.reset(self._token)
        stack = _stack.get()
        self._tracer._finish(span, stack[-1] if stack else None)
        return False


class _Aggregate:
    __slots__ = ("histogram", "counters")

    def __init__(self) -> None:
        self.histogram = LatencyHistogram()
        self.counters: dict[str, float] = {}


class Tracer:
    """Collects finished spans into per-name aggregates.

    Thread-safe: spans from any thread aggregate into one registry.  The
    last finished *root* span (one with no parent) is kept on
    :attr:`last_root` for trace printing (``repro trace``, the slow-op
    log); non-root spans are attached to their parent's ``children``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._aggregates: dict[str, _Aggregate] = {}
        self.last_root: Span | None = None

    def span(self, name: str, **attributes) -> _SpanScope:
        """Open a span; use as a context manager."""
        return _SpanScope(self, Span(name, attributes or None))

    def _finish(self, span: Span, parent: Span | None) -> None:
        if parent is not None:
            parent.children.append(span)
        with self._lock:
            entry = self._aggregates.get(span.name)
            if entry is None:
                entry = self._aggregates[span.name] = _Aggregate()
            entry.histogram.observe(span.elapsed)
            for counter, amount in span.counters.items():
                entry.counters[counter] = entry.counters.get(counter, 0) + amount
            if parent is None:
                self.last_root = span

    # -- reading ---------------------------------------------------------------

    def count(self, name: str) -> int:
        """How many spans of *name* finished."""
        with self._lock:
            entry = self._aggregates.get(name)
            return entry.histogram.count if entry else 0

    def counter(self, name: str, counter: str) -> float:
        """Aggregated value of one counter of one span name (0 when absent)."""
        with self._lock:
            entry = self._aggregates.get(name)
            return entry.counters.get(counter, 0) if entry else 0

    def aggregates(self) -> dict:
        """A JSON-ready snapshot: per-span-name histograms and counters.

        ``bucket_bounds`` gives the shared bucket upper bounds; each span's
        ``buckets`` lists observation counts per bucket (plus overflow), so
        histograms survive the wire intact.
        """
        with self._lock:
            spans = {}
            for name, entry in sorted(self._aggregates.items()):
                payload = entry.histogram.to_dict(buckets=True)
                if entry.counters:
                    payload["counters"] = {
                        k: round(v, 9) if isinstance(v, float) else v
                        for k, v in sorted(entry.counters.items())
                    }
                spans[name] = payload
        return {"bucket_bounds": list(LATENCY_BUCKETS), "spans": spans}

    def reset(self) -> None:
        """Drop every aggregate and the last root."""
        with self._lock:
            self._aggregates.clear()
            self.last_root = None


# -- module-level switchboard --------------------------------------------------

_active: Tracer | None = None


def enabled() -> bool:
    """True when a tracer is installed."""
    return _active is not None


def get_tracer() -> Tracer | None:
    """The installed tracer, or None while disabled."""
    return _active


def enable(tracer: Tracer | None = None) -> Tracer:
    """Install (and return) a process-wide tracer."""
    global _active
    _active = tracer or Tracer()
    return _active


def disable() -> Tracer | None:
    """Uninstall the tracer; returns it for post-hoc reading."""
    global _active
    tracer, _active = _active, None
    return tracer


@contextmanager
def use(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Scoped tracing: install a tracer, restore the previous one on exit."""
    global _active
    previous = _active
    installed = tracer or Tracer()
    _active = installed
    try:
        yield installed
    finally:
        _active = previous


def span(name: str, **attributes):
    """Open a span on the current tracer (or the shared no-op when off).

    The disabled path allocates nothing: the kwargs dict is the only cost,
    so call sites on very hot paths should pass none and :meth:`Span.set`
    attributes behind an :func:`enabled` guard instead.
    """
    tracer = _active
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attributes)


def current_span() -> Span | _NullSpan:
    """The innermost open span of this context (no-op span when none)."""
    if _active is None:
        return NULL_SPAN
    stack = _stack.get()
    return stack[-1] if stack else NULL_SPAN


def add(counter: str, amount: float = 1) -> None:
    """Bump a counter on the innermost open span (no-op when disabled)."""
    if _active is not None:
        stack = _stack.get()
        if stack:
            stack[-1].add(counter, amount)


# -- rendering -----------------------------------------------------------------

def format_span(span_: Span, indent: int = 0) -> str:
    """Render a span tree as an indented per-stage breakdown."""
    lines: list[str] = []
    _format_into(span_, indent, lines)
    return "\n".join(lines)


def _format_into(span_: Span, depth: int, lines: list[str]) -> None:
    detail: list[str] = []
    for key, value in sorted(span_.attributes.items()):
        detail.append(f"{key}={_jsonable(value)}")
    for key, value in sorted(span_.counters.items()):
        if isinstance(value, float) and not value.is_integer():
            detail.append(f"{key}={value:.6f}")
        else:
            detail.append(f"{key}={int(value)}")
    suffix = ("  [" + " ".join(detail) + "]") if detail else ""
    lines.append(f"{'  ' * depth}{span_.name:<24s} "
                 f"{span_.elapsed * 1e3:9.3f} ms{suffix}")
    for child in span_.children:
        _format_into(child, depth + 1, lines)
