"""Fixed-bucket latency histograms shared by metrics and tracing.

One implementation serves both the per-request metrics of
:mod:`repro.server.metrics` and the per-span aggregates of
:mod:`repro.obs.tracer`, so the ``stats`` protocol op reports the same
bucket layout everywhere and clients can merge histograms from either
source.
"""

from __future__ import annotations

from bisect import bisect_left

#: Histogram bucket upper bounds, in seconds (plus a catch-all overflow).
LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class LatencyHistogram:
    """Fixed-bucket latency histogram with bucket-bound quantile estimates."""

    __slots__ = ("_counts", "count", "total_seconds", "max_seconds",
                 "_quantile_overrides")

    def __init__(self) -> None:
        self._counts = [0] * (len(LATENCY_BUCKETS) + 1)
        self.count = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0
        #: Quantiles carried through a bucket-less wire payload
        #: (``{q: seconds}``); dropped on the first fresh observation.
        self._quantile_overrides: dict[float, float] | None = None

    def observe(self, seconds: float) -> None:
        self._counts[bisect_left(LATENCY_BUCKETS, seconds)] += 1
        self.count += 1
        self.total_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds
        self._quantile_overrides = None

    def bucket_counts(self) -> list[int]:
        """Per-bucket observation counts (last entry is the overflow bucket)."""
        return list(self._counts)

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the q-quantile observation."""
        if not self.count:
            return 0.0
        if self._quantile_overrides is not None:
            try:
                return self._quantile_overrides[q]
            except KeyError:
                pass  # unusual quantile: fall back to the (empty) buckets
        rank = max(1, int(q * self.count + 0.5))
        seen = 0
        for index, bucket_count in enumerate(self._counts):
            seen += bucket_count
            if seen >= rank:
                if index < len(LATENCY_BUCKETS):
                    return LATENCY_BUCKETS[index]
                return self.max_seconds
        return self.max_seconds

    def to_dict(self, buckets: bool = False) -> dict:
        payload = {
            "count": self.count,
            "total_seconds": round(self.total_seconds, 6),
            "mean_seconds": round(self.total_seconds / self.count, 6)
            if self.count else 0.0,
            "max_seconds": round(self.max_seconds, 6),
            "p50_seconds": self.quantile(0.50),
            "p95_seconds": self.quantile(0.95),
            "p99_seconds": self.quantile(0.99),
        }
        if buckets:
            payload["buckets"] = self.bucket_counts()
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "LatencyHistogram":
        """Rebuild a histogram from a ``to_dict`` payload.

        With a ``buckets`` payload the rebuilt histogram is exact.  Without
        one (the compact per-op shape) the counts cannot be recovered, so
        the shipped ``p50``/``p95``/``p99`` values are carried through as
        overrides -- previously :meth:`quantile` fell through the empty
        buckets and reported ``max_seconds`` for every quantile.  Either
        way a round trip preserves the reported quantiles.
        """
        histogram = cls()
        buckets = payload.get("buckets")
        if buckets is not None:
            if len(buckets) != len(histogram._counts):
                raise ValueError(
                    f"expected {len(histogram._counts)} buckets, "
                    f"got {len(buckets)}")
            histogram._counts = [int(b) for b in buckets]
        else:
            histogram._quantile_overrides = {
                quantile: float(payload.get(key, 0.0))
                for quantile, key in ((0.50, "p50_seconds"),
                                      (0.95, "p95_seconds"),
                                      (0.99, "p99_seconds"))
            }
        histogram.count = int(payload.get("count", sum(histogram._counts)))
        histogram.total_seconds = float(payload.get("total_seconds", 0.0))
        histogram.max_seconds = float(payload.get("max_seconds", 0.0))
        return histogram
