"""repro.obs -- lightweight end-to-end execution tracing.

A context-var span stack with a ~zero-cost no-op path when disabled.  The
instrumented stages (see docs/OBSERVABILITY.md for the full span table):

==========================  ==================================================
span name                   where
==========================  ==================================================
``compile.transition``      :class:`repro.events.event_rules.EventCompiler`
``compile.expand``          transition-rule expansion (§3.2)
``eval.materialize``        bottom-up materialisation of a program
``eval.stratum``            one stratum's fixpoint (iterations, delta sizes)
``upward.interpret``        one upward interpretation (§4.1)
``upward.old_state``        old-state materialisation (amortised)
``upward.scc``              one derived SCC (incremental or recompute)
``downward.interpret``      one downward interpretation (§4.2)
``downward.request``        one request literal's search (nodes, prunes)
``engine.commit_batch``     one group commit (batch size, lock wait)
``engine.fsync``            one WAL fsync
``request.<op>``            one server request end to end
==========================  ==================================================

Enable with :func:`enable` / the ``REPRO_TRACE`` environment variable /
``repro serve --trace``; inspect with :meth:`Tracer.aggregates`, the
extended ``stats`` protocol op, or the ``repro trace`` CLI subcommand.
"""

from __future__ import annotations

import os

from repro.obs.histogram import LATENCY_BUCKETS, LatencyHistogram
from repro.obs.tracer import (
    NULL_SPAN,
    Span,
    Tracer,
    add,
    current_span,
    disable,
    enable,
    enabled,
    format_span,
    get_tracer,
    span,
    use,
)

__all__ = [
    "LATENCY_BUCKETS",
    "LatencyHistogram",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "add",
    "current_span",
    "disable",
    "enable",
    "enabled",
    "format_span",
    "get_tracer",
    "span",
    "use",
]

if os.environ.get("REPRO_TRACE"):  # pragma: no cover - env-dependent
    enable()
