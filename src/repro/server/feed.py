"""Standing-query subscriptions: the change-feed bus behind ``subscribe``.

Every commit already computes the induced deltas of the derived predicates
(upward interpretation on the slow path, counting/advance maintainers on
the fast path).  This module turns those deltas into a push feed: a
:class:`FeedBus` holds the registered standing queries and, when the
engine publishes a commit's delta, fans a per-subscription *frame* out to
each subscriber whose goals the delta touches.

Design constraints, in order of importance:

- **The commit path never blocks on a subscriber.**  The bus is purely
  synchronous fan-out to callbacks; queueing, backpressure and socket
  writes all live with the caller (the server wraps each callback in a
  bounded channel drained by the event loop).  A callback that raises is
  dropped from the bus, never propagated into the commit.
- **Frames are self-describing.**  A ``delta`` frame carries
  ``{txn_id, epoch, inserted, deleted}`` with rows in the same sorted-list
  wire shape as every other result type (:func:`repro.serde.rows_to_lists`).
  A ``resync`` frame tells the subscriber the server lost delta coverage
  (slow-path commit, checkpoint, cache reset) and it must re-pull.  A
  ``closed`` frame is the last thing an overflowing subscriber sees.
- **Filters reuse the bound-goal shape of the routing layer.**  A goal is
  either a bare derived predicate name (``"Unemp"``) or an atom with
  constants at bound positions (``"Unemp(Maria)"``, ``"Emp(x, Sales)"``),
  parsed by the same grammar as queries.

:class:`FeedMerger` is the shard-side companion: the group/router fan a
subscription out to every shard and merge the per-shard frames of one
coordinated (2PC) transaction into exactly one frame, emitted in commit
decision order.
"""

from __future__ import annotations

import itertools
import re
import threading
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from repro.datalog.errors import DatalogError, SubscriptionError
from repro.datalog.parser import parse_atom
from repro.datalog.terms import Constant
from repro.serde import rows_to_lists

__all__ = [
    "BoundGoal",
    "FeedBus",
    "FeedMerger",
    "Subscription",
    "SubscriptionError",
    "closed_frame",
    "delta_frame",
    "frame_is_empty",
    "merge_frames",
    "parse_goals",
    "resync_frame",
]

Row = tuple  # tuple[Constant, ...]

_BARE_PREDICATE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


# ---------------------------------------------------------------------------
# goals


@dataclass(frozen=True)
class BoundGoal:
    """One watched predicate, optionally with constants at bound positions.

    ``arity`` is ``None`` for a bare predicate name (matches any row) and
    the atom's arity otherwise; ``bindings`` holds ``(position, constant)``
    pairs for the constant arguments.
    """

    predicate: str
    arity: int | None = None
    bindings: tuple[tuple[int, Constant], ...] = ()

    @classmethod
    def parse(cls, text: object) -> "BoundGoal":
        """Parse a goal string; raise :class:`SubscriptionError` on junk."""
        if not isinstance(text, str) or not text.strip():
            raise SubscriptionError(
                "subscription goal must be a non-empty string, got "
                f"{text!r}")
        source = text.strip()
        if "(" not in source:
            if not _BARE_PREDICATE.match(source):
                raise SubscriptionError(
                    f"malformed subscription goal: {source!r}")
            return cls(predicate=source)
        try:
            atom = parse_atom(source)
        except DatalogError as error:
            raise SubscriptionError(
                f"malformed subscription goal {source!r}: {error}") from error
        bindings = tuple((index, term)
                         for index, term in enumerate(atom.args)
                         if isinstance(term, Constant))
        return cls(predicate=atom.predicate, arity=len(atom.args),
                   bindings=bindings)

    def matches(self, row: Row) -> bool:
        """Whether a row (tuple of constants) satisfies the bound filter."""
        if self.arity is not None and len(row) != self.arity:
            return False
        return all(index < len(row) and row[index] == constant
                   for index, constant in self.bindings)

    def to_wire(self) -> str:
        if self.arity is None:
            return self.predicate
        terms = {index: str(constant) for index, constant in self.bindings}
        args = [terms.get(index, f"x{index}") for index in range(self.arity)]
        return f"{self.predicate}({', '.join(args)})"


def parse_goals(goals: object) -> tuple[BoundGoal, ...]:
    """Parse a wire ``goals`` value into bound goals (typed errors on junk)."""
    if isinstance(goals, str):
        goals = [goals]
    if not isinstance(goals, (list, tuple)) or not goals:
        raise SubscriptionError(
            "subscribe requires a non-empty list of goal strings, got "
            f"{goals!r}")
    return tuple(BoundGoal.parse(goal) for goal in goals)


# ---------------------------------------------------------------------------
# frames


def delta_frame(txn_id: str | None, epoch: int,
                inserted: Mapping[str, Iterable[Row]],
                deleted: Mapping[str, Iterable[Row]]) -> dict:
    """One commit's induced delta, restricted to a subscription."""
    return {"kind": "delta", "txn_id": txn_id, "epoch": epoch,
            "inserted": rows_to_lists(inserted),
            "deleted": rows_to_lists(deleted)}


def resync_frame(epoch: int, reason: str) -> dict:
    """Delta coverage was lost; the subscriber must re-pull full state."""
    return {"kind": "resync", "epoch": epoch, "reason": reason}


def closed_frame(error_type: str, message: str) -> dict:
    """Terminal frame: the server dropped this subscription."""
    return {"kind": "closed", "error_type": error_type, "message": message}


def frame_is_empty(frame: Mapping) -> bool:
    """True for a delta frame that carries no rows at all."""
    return (frame.get("kind") == "delta"
            and not frame.get("inserted") and not frame.get("deleted"))


# ---------------------------------------------------------------------------
# the bus


@dataclass
class Subscription:
    """One registered standing query and its delivery callback."""

    sub_id: str
    goals: tuple[BoundGoal, ...]
    callback: Callable[[dict], None]
    #: Emit a frame for every published delta even when the restriction is
    #: empty.  The shard layers use this so a coordinated commit yields a
    #: frame from *every* participant, letting the merger know when the
    #: set is complete.
    emit_empty: bool = False
    predicates: frozenset[str] = field(init=False)
    #: No constant-bound positions anywhere: every row of a watched
    #: predicate matches, so a frame built once can be fanned out as-is.
    unfiltered: bool = field(init=False)

    def __post_init__(self) -> None:
        self.predicates = frozenset(goal.predicate for goal in self.goals)
        self.unfiltered = not any(goal.bindings for goal in self.goals)

    def restrict(self, delta: Mapping[str, Iterable[Row]]) -> dict:
        """The sub-mapping of *delta* matching this subscription's goals."""
        out: dict[str, set] = {}
        for goal in self.goals:
            rows = delta.get(goal.predicate)
            if not rows:
                continue
            hits = {row for row in rows if goal.matches(row)}
            if hits:
                out.setdefault(goal.predicate, set()).update(hits)
        return out

    def describe(self) -> dict:
        return {"subscription_id": self.sub_id,
                "goals": [goal.to_wire() for goal in self.goals],
                "predicates": sorted(self.predicates)}


class FeedBus:
    """Registry plus synchronous fan-out of change-feed frames.

    Thread-safe; :meth:`publish_delta` / :meth:`publish_resync` are called
    from commit threads while subscriptions come and go from server
    sessions.  Callbacks run on the publishing thread and must be cheap
    and non-blocking (the server's callbacks only append to a bounded
    in-memory channel); a callback that raises is unsubscribed.
    """

    def __init__(self, metrics=None):
        self._lock = threading.Lock()
        self._subs: dict[str, Subscription] = {}
        self._metrics = metrics
        self._ids = itertools.count(1)

    # -- registry --------------------------------------------------------------

    def subscribe(self, goals: tuple[BoundGoal, ...],
                  callback: Callable[[dict], None], *,
                  emit_empty: bool = False) -> Subscription:
        with self._lock:
            sub = Subscription(sub_id=f"sub-{next(self._ids)}", goals=goals,
                               callback=callback, emit_empty=emit_empty)
            self._subs[sub.sub_id] = sub
        return sub

    def unsubscribe(self, sub_id: str) -> bool:
        with self._lock:
            return self._subs.pop(sub_id, None) is not None

    @property
    def active(self) -> int:
        with self._lock:
            return len(self._subs)

    def watched_predicates(self) -> frozenset[str]:
        with self._lock:
            subs = list(self._subs.values())
        out: set[str] = set()
        for sub in subs:
            out |= sub.predicates
        return frozenset(out)

    def _snapshot(self) -> list[Subscription]:
        with self._lock:
            return list(self._subs.values())

    # -- publishing ------------------------------------------------------------

    def publish_delta(self, *, txn_id: str | None, epoch: int,
                      inserted: Mapping[str, Iterable[Row]],
                      deleted: Mapping[str, Iterable[Row]]) -> int:
        """Fan one commit's induced delta out; returns frames delivered.

        Unfiltered subscriptions covering every touched predicate share
        one frame built once (each gets its own shallow copy), so fan-out
        to N such subscribers costs N dict copies, not N row
        normalisations -- the common case for full-view feeds.
        """
        sent = 0
        shared: dict | None = None
        live_ins = frozenset(p for p, rows in inserted.items() if rows)
        live_dels = frozenset(p for p, rows in deleted.items() if rows)
        for sub in self._snapshot():
            if (sub.unfiltered and live_ins <= sub.predicates
                    and live_dels <= sub.predicates):
                if not live_ins and not live_dels and not sub.emit_empty:
                    continue
                if shared is None:
                    shared = delta_frame(
                        txn_id, epoch,
                        {p: inserted[p] for p in live_ins},
                        {p: deleted[p] for p in live_dels})
                delivered = self._deliver(sub, dict(shared))
            else:
                ins = sub.restrict(inserted)
                dels = sub.restrict(deleted)
                if not ins and not dels and not sub.emit_empty:
                    continue
                delivered = self._deliver(
                    sub, delta_frame(txn_id, epoch, ins, dels))
            if delivered:
                sent += 1
        if sent and self._metrics is not None:
            self._metrics.increment("feed.frames", sent)
        return sent

    def publish_resync(self, *, epoch: int, reason: str) -> int:
        """Tell every subscriber its delta stream lost coverage."""
        sent = 0
        for sub in self._snapshot():
            if self._deliver(sub, resync_frame(epoch, reason)):
                sent += 1
        if sent and self._metrics is not None:
            self._metrics.increment("feed.resync", sent)
        return sent

    def _deliver(self, sub: Subscription, frame: dict) -> bool:
        try:
            sub.callback(frame)
            return True
        except Exception:
            # A broken subscriber must never break the commit: drop it.
            self.unsubscribe(sub.sub_id)
            if self._metrics is not None:
                self._metrics.increment("feed.callback_errors")
            return False


# ---------------------------------------------------------------------------
# shard-side merging


def merge_frames(txn_id: str | None, frames: Iterable[Mapping]) -> dict:
    """Union per-shard delta frames of one transaction into one frame."""
    inserted: dict[str, set] = {}
    deleted: dict[str, set] = {}
    epoch = 0
    for frame in frames:
        epoch = max(epoch, frame.get("epoch") or 0)
        for key, acc in (("inserted", inserted), ("deleted", deleted)):
            for predicate, rows in (frame.get(key) or {}).items():
                acc.setdefault(predicate, set()).update(
                    tuple(row) for row in rows)
    def serialise(acc: dict[str, set]) -> dict:
        return {predicate: sorted(list(row) for row in rows)
                for predicate, rows in sorted(acc.items())}

    return {"kind": "delta", "txn_id": txn_id, "epoch": epoch,
            "inserted": serialise(inserted), "deleted": serialise(deleted)}


class FeedMerger:
    """Merge per-shard feeds into one subscriber stream.

    The coordinator calls :meth:`begin` *before* driving 2PC so frames a
    shard pushes during phase two are buffered rather than forwarded;
    :meth:`commit` / :meth:`abort` record the decision.  A coordinated
    transaction's merged frame is emitted once frames from every expected
    shard have arrived *and* the decision is known, in decision (FIFO)
    order; non-coordinated frames pass straight through.  Empty deltas
    (a shard untouched by the subscription) are folded in silently.
    """

    def __init__(self, emit: Callable[[dict], None]):
        self._emit = emit
        self._lock = threading.Lock()
        #: txn_id -> {"expected": set, "frames": {shard: frame},
        #:            "decided": bool}
        self._pending: dict[str, dict] = {}
        self._order: list[str] = []

    def begin(self, txn_id: str, shards: Iterable[int]) -> None:
        with self._lock:
            self._pending[txn_id] = {"expected": set(shards), "frames": {},
                                     "decided": False}

    def commit(self, txn_id: str) -> None:
        ready = []
        with self._lock:
            entry = self._pending.get(txn_id)
            if entry is None:
                return
            entry["decided"] = True
            self._order.append(txn_id)
            ready = self._drain_locked()
        for frame in ready:
            self._emit(frame)

    def abort(self, txn_id: str) -> None:
        with self._lock:
            self._pending.pop(txn_id, None)

    def on_frame(self, shard: int, frame: Mapping) -> None:
        """One frame arrived from a shard's feed (any thread)."""
        if frame.get("kind") != "delta":
            # resync / closed apply to the merged stream as a whole: the
            # subscriber must re-pull, which supersedes anything buffered
            # (and a stale pending entry would block the queue head).
            with self._lock:
                self._pending.clear()
                self._order.clear()
            self._emit(dict(frame))
            return
        txn_id = frame.get("txn_id")
        ready = []
        with self._lock:
            entry = self._pending.get(txn_id) if txn_id else None
            if entry is not None:
                entry["frames"][shard] = frame
                ready = self._drain_locked()
            elif frame_is_empty(frame):
                return
        if entry is None:
            self._emit(dict(frame))
            return
        for merged in ready:
            self._emit(merged)

    def _drain_locked(self) -> list[dict]:
        """Pop decided head-of-line transactions whose frame sets are full."""
        out = []
        while self._order:
            txn_id = self._order[0]
            entry = self._pending.get(txn_id)
            if entry is None:
                self._order.pop(0)
                continue
            if not (entry["decided"]
                    and set(entry["frames"]) >= entry["expected"]):
                break
            self._order.pop(0)
            self._pending.pop(txn_id, None)
            merged = merge_frames(txn_id, entry["frames"].values())
            if not frame_is_empty(merged):
                out.append(merged)
        return out
