"""A self-healing client: reconnect, retry, backoff, deadline budgets.

:class:`ResilientClient` wraps the blocking :class:`DatabaseClient` with
the retry discipline the exactly-once machinery makes safe:

- **Reconnect on drop.**  A lost or desynchronised connection
  (:class:`ConnectionLostError`) is discarded and a fresh one dialled on
  the next attempt.
- **Capped exponential backoff with full jitter.**  Delays grow
  ``base_delay * 2**attempt`` up to ``max_delay``, each drawn uniformly
  from ``[0, cap]`` (the "full jitter" scheme) so retrying clients do not
  stampede in lockstep.  An ``overloaded`` server's ``retry_after`` hint
  takes precedence.  Sleeps go through :mod:`repro.faults.clock`, so tests
  drive the schedule on a virtual clock.
- **Deadline budget.**  A per-call ``deadline`` (seconds) bounds the whole
  retry loop, and the *remaining* budget travels to the server as a
  ``deadline_ms`` request param -- the server refuses work it can no
  longer finish in time instead of doing it for a caller that stopped
  waiting.
- **Retry policy by operation.**  Reads (:data:`IDEMPOTENT_OPS`) are
  always safe to resend.  Commits are only safe because of idempotency
  keys: the client stamps every commit with a ``txn_id`` (a fresh UUID
  unless the caller supplies one), and the engine's durable dedup table
  turns a replayed commit -- after a dropped ack, a deferral timeout, or
  a crash -- into the original outcome.  Everything else fails fast.

The retry counters (``retry.attempts``, ``retry.give_up``,
``retry.reconnects``) are kept per client and mirrored into the tracing
layer via :func:`repro.obs.tracer.add`.
"""

from __future__ import annotations

import random
import uuid

from repro.datalog.errors import DatalogError
from repro.events.events import Transaction
from repro.faults import clock
from repro.obs import tracer as obs
from repro.requests import UpdateRequest
from repro.server.client import (
    ConnectionLostError,
    DatabaseClient,
    ServerError,
)

#: Ops safe to resend blindly: they do not mutate the database.
IDEMPOTENT_OPS = frozenset({
    "hello", "ping", "query", "upward", "check", "monitor", "downward",
    "repair", "stats", "health",
})

#: Ops that are idempotent *when stamped with a txn_id*: the participant's
#: durable dedup/vote state turns a replay into the recorded answer.
TXN_STAMPED_OPS = frozenset({"commit", "prepare", "decide"})

#: Wire error types that signal a transient server condition.
#: ``txn-conflict`` is the 2PC key-lock collision: it clears when the
#: in-doubt transaction holding the keys resolves.
RETRYABLE_ERROR_TYPES = frozenset({"overloaded", "timeout", "deadline",
                                   "conflict-timeout", "txn-conflict",
                                   "unavailable"})


class RetriesExhausted(DatalogError):
    """Every allowed attempt failed; ``last`` is the final error."""

    def __init__(self, message: str, last: BaseException):
        super().__init__(message)
        self.last = last


class DeadlineExceeded(DatalogError):
    """The per-call deadline budget ran out before an attempt succeeded."""


class ResilientClient:
    """A reconnecting, retrying front over :class:`DatabaseClient`.

    Parameters
    ----------
    max_attempts:
        total tries per call (first attempt included).
    base_delay / max_delay:
        backoff schedule bounds in seconds (full jitter, see module doc).
    deadline:
        default per-call budget in seconds (``None`` = unbounded); each
        call may override it.
    seed:
        seeds the jitter RNG -- tests pass one for reproducible schedules.
    auto_txn_id:
        stamp commits lacking a ``txn_id`` with a fresh UUID (on by
        default; without a key a commit is only tried once).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 timeout: float = 30.0, max_attempts: int = 5,
                 base_delay: float = 0.05, max_delay: float = 2.0,
                 deadline: float | None = None, seed: int | None = None,
                 auto_txn_id: bool = True):
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self._host = host
        self._port = port
        self._timeout = timeout
        self._max_attempts = max_attempts
        self._base_delay = base_delay
        self._max_delay = max_delay
        self._deadline = deadline
        self._auto_txn_id = auto_txn_id
        self._rng = random.Random(seed)
        self._client: DatabaseClient | None = None
        self.counters: dict[str, int] = {
            "retry.attempts": 0, "retry.give_up": 0, "retry.reconnects": 0}

    # -- connection management -------------------------------------------------

    def _connection(self) -> DatabaseClient:
        if self._client is None or self._client.broken is not None:
            if self._client is not None:
                self._drop_connection()
                self._count("retry.reconnects")
            self._client = DatabaseClient(
                self._host, self._port, timeout=self._timeout)
        return self._client

    def _drop_connection(self) -> None:
        if self._client is not None:
            try:
                self._client.close()
            except OSError:
                pass
            self._client = None

    def close(self) -> None:
        self._drop_connection()

    def __enter__(self) -> "ResilientClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- retry core ------------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount
        obs.add(name, amount)

    def _backoff(self, attempt: int, hint: float | None,
                 remaining: float | None) -> None:
        cap = min(self._max_delay, self._base_delay * (2 ** attempt))
        delay = hint if hint is not None else self._rng.uniform(0.0, cap)
        if remaining is not None:
            delay = min(delay, max(0.0, remaining))
        clock.sleep(delay)

    def call(self, op: str, deadline: float | None = None,
             **params) -> dict:
        """Send one request with retries; returns the result dict.

        Mutating ops other than a txn-stamped ``commit`` get exactly one
        attempt -- without an idempotency key a replay could double-apply.
        """
        if op == "commit" and "txn_id" not in params and self._auto_txn_id:
            params["txn_id"] = uuid.uuid4().hex
        retryable = op in IDEMPOTENT_OPS or (
            op in TXN_STAMPED_OPS and params.get("txn_id") is not None)
        budget = deadline if deadline is not None else self._deadline
        start = clock.monotonic()
        last: BaseException | None = None
        for attempt in range(self._max_attempts):
            remaining = (None if budget is None
                         else budget - (clock.monotonic() - start))
            if remaining is not None and remaining <= 0:
                self._count("retry.give_up")
                raise DeadlineExceeded(
                    f"deadline of {budget:g}s exhausted after "
                    f"{attempt} attempt(s) of {op}") from last
            sent = dict(params)
            if remaining is not None:
                sent["deadline_ms"] = max(1, int(remaining * 1000))
            if attempt:
                sent["attempt"] = attempt + 1
                self._count("retry.attempts")
            try:
                client = self._connection()
            except ServerError as error:
                # The handshake failed -- e.g. an overloaded server
                # shedding new connections.  Nothing was sent yet, so this
                # is retryable whatever the op.
                if error.type not in RETRYABLE_ERROR_TYPES:
                    raise
                last = error
            except OSError as error:
                # Dial failure (refused, unreachable): nothing was sent,
                # always safe to retry -- the server may be restarting.
                last = error
                self._drop_connection()
            else:
                try:
                    return client.call(op, **sent)
                except ConnectionLostError as error:
                    last = error
                    self._drop_connection()
                    self._count("retry.reconnects")
                    if not retryable:
                        raise
                except ServerError as error:
                    if (error.type not in RETRYABLE_ERROR_TYPES
                            or not retryable):
                        raise
                    last = error
            if attempt + 1 < self._max_attempts:  # no sleep after the last
                self._backoff(attempt, getattr(last, "retry_after", None),
                              None if budget is None
                              else budget - (clock.monotonic() - start))
        self._count("retry.give_up")
        raise RetriesExhausted(
            f"{op} failed after {self._max_attempts} attempts: {last}",
            last)

    def send(self, request: UpdateRequest,
             deadline: float | None = None) -> dict:
        """Send one typed request (the ``repro call`` entry point)."""
        wire = request.to_wire()
        return self.call(wire["op"], deadline=deadline,
                         **wire.get("params", {}))

    # -- convenience wrappers --------------------------------------------------

    def ping(self) -> bool:
        return bool(self.call("ping").get("pong"))

    def query(self, goal: str) -> list[list]:
        return self.call("query", goal=goal)["answers"]

    def commit(self, transaction: Transaction | str,
               on_violation: str | None = None,
               txn_id: str | None = None,
               deadline: float | None = None) -> dict:
        params: dict = {
            "transaction": DatabaseClient._transaction_text(transaction)}
        if on_violation is not None:
            params["on_violation"] = on_violation
        if txn_id is not None:
            params["txn_id"] = txn_id
        return self.call("commit", deadline=deadline, **params)

    def stats(self) -> dict:
        return self.call("stats")

    def health(self) -> dict:
        return self.call("health")

    # -- standing-query subscriptions ------------------------------------------

    def subscribe(self, goals, *, frame_timeout: float | None = None,
                  reconnect: bool = True):
        """Stream feed frames for a standing query (a generator).

        Opens a *dedicated* connection (frames are pushed to the session
        that subscribed, and this client's request connection must stay
        request/response), subscribes to *goals*, and yields frame dicts
        (``{"kind": "delta"|"resync"|"closed", ...}``) as the server
        pushes them.

        Per-subscription ``seq`` numbers are checked to be consecutive:
        a gap means a frame was lost in flight, so a synthetic
        ``{"kind": "resync", "reason": "gap"}`` is yielded before the
        out-of-sequence frame -- consumers must re-pull the materialised
        extension exactly as for a server-sent resync.  A lost connection
        or a server-side ``closed`` frame (e.g. ``feed_overflow``) yields
        ``{"kind": "resync", "reason": "reconnect"}`` and re-subscribes on
        a fresh connection (unless *reconnect* is false, in which case the
        generator raises or returns).  Redials follow the client's normal
        backoff schedule and give up after ``max_attempts`` consecutive
        failures.
        """
        failures = 0
        last: BaseException | None = None
        while True:
            if failures >= self._max_attempts:
                self._count("retry.give_up")
                raise RetriesExhausted(
                    f"subscribe failed after {failures} attempts: {last}",
                    last if last is not None else ConnectionLostError(
                        "subscription connection lost"))
            if failures:
                self._count("retry.attempts")
                self._backoff(failures - 1,
                              getattr(last, "retry_after", None), None)
            try:
                client = DatabaseClient(
                    self._host, self._port, timeout=self._timeout)
            except (ConnectionLostError, OSError) as error:
                failures += 1
                last = error
                continue
            except ServerError as error:
                if error.type not in RETRYABLE_ERROR_TYPES:
                    raise
                failures += 1
                last = error
                continue
            resubscribe = False
            try:
                try:
                    info = client.subscribe(goals)
                except ServerError as error:
                    if error.type not in RETRYABLE_ERROR_TYPES:
                        raise  # e.g. a typed "subscription" error: not ours
                    failures += 1
                    last = error
                    continue
                failures = 0
                sub_id = info["subscription_id"]
                expected = 1
                while True:
                    try:
                        pushed = client.next_frame(timeout=frame_timeout)
                    except ConnectionLostError as error:
                        last = error
                        resubscribe = True
                        break
                    if pushed.get("feed") != sub_id:
                        continue  # a stale frame from a prior subscription
                    seq = pushed.get("seq")
                    frame = pushed.get("frame") or {}
                    if seq != expected:
                        self._count("feed.gaps")
                        yield {"kind": "resync", "reason": "gap"}
                    expected = (seq if isinstance(seq, int) else expected) + 1
                    yield frame
                    if frame.get("kind") == "closed":
                        self._count("feed.closed")
                        resubscribe = True
                        break
            finally:
                try:
                    client.close()
                except OSError:
                    pass
            if not resubscribe:
                return
            if not reconnect:
                if isinstance(last, ConnectionLostError):
                    raise last
                return
            self._count("retry.reconnects")
            failures += 1
            yield {"kind": "resync", "reason": "reconnect"}
