"""A small blocking JSON-lines client for the repro server.

Used by tests, benchmarks, ``repro call`` and the examples.  One socket,
one outstanding request at a time; responses are matched to requests by
id.  Failures reported by the server raise :class:`ServerError` carrying
the wire error type.
"""

from __future__ import annotations

import socket
from typing import Iterable

from repro.datalog.errors import DatalogError
from repro.events.events import Transaction
from repro.requests import UpdateRequest
from repro.server import protocol


class ServerError(DatalogError):
    """An error response from the server (``.type`` is the wire type)."""

    def __init__(self, error_type: str, message: str):
        super().__init__(message)
        self.type = error_type


class DatabaseClient:
    """A blocking client for one server connection.

    >>> with DatabaseClient(port=port) as client:
    ...     client.commit("insert Works(Maria)")
    ...     client.query("Works(x)")
    [['Maria']]
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 timeout: float = 30.0, handshake: bool = True):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0
        self.server_info: dict | None = None
        if handshake:
            try:
                self.server_info = self.call("hello")
            except BaseException:
                self.close()
                raise

    # -- plumbing --------------------------------------------------------------

    def call(self, op: str, **params) -> dict:
        """Send one request and return the result dict (or raise)."""
        self._next_id += 1
        request = protocol.Request(op=op, params=params, id=self._next_id)
        self._file.write(request.to_json().encode("utf-8") + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        response = protocol.decode_response(line)
        if not response.ok:
            error = response.error or {}
            raise ServerError(error.get("type", "internal"),
                              error.get("message", "unknown server error"))
        if response.id is not None and response.id != self._next_id:
            raise protocol.ProtocolError(
                f"response id {response.id!r} does not match "
                f"request id {self._next_id!r}")
        return response.result or {}

    def send(self, request: UpdateRequest) -> dict:
        """Send one typed :class:`~repro.requests.UpdateRequest`."""
        wire = request.to_wire()
        return self.call(wire["op"], **wire.get("params", {}))

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "DatabaseClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- convenience wrappers --------------------------------------------------

    @staticmethod
    def _transaction_text(transaction: Transaction | str) -> str:
        if isinstance(transaction, Transaction):
            return ", ".join(
                ("insert " if e.is_insertion else "delete ") + str(e.atom())
                for e in transaction)
        return transaction

    def ping(self) -> bool:
        return bool(self.call("ping").get("pong"))

    def query(self, goal: str) -> list[list]:
        return self.call("query", goal=goal)["answers"]

    def commit(self, transaction: Transaction | str,
               on_violation: str | None = None) -> dict:
        params: dict = {"transaction": self._transaction_text(transaction)}
        if on_violation is not None:
            params["on_violation"] = on_violation
        return self.call("commit", **params)

    def check(self, transaction: Transaction | str) -> dict:
        return self.call("check",
                         transaction=self._transaction_text(transaction))

    def upward(self, transaction: Transaction | str,
               predicates: Iterable[str] | None = None) -> dict:
        params: dict = {"transaction": self._transaction_text(transaction)}
        if predicates is not None:
            params["predicates"] = list(predicates)
        return self.call("upward", **params)

    def monitor(self, transaction: Transaction | str,
                conditions: Iterable[str]) -> dict:
        return self.call("monitor",
                         transaction=self._transaction_text(transaction),
                         conditions=list(conditions))

    def translate(self, requests: str | Iterable[str]) -> dict:
        if isinstance(requests, str):
            requests = [r for r in requests.split(";") if r.strip()]
        return self.call("downward", requests=list(requests))

    def repair(self, verify: bool = False) -> dict:
        return self.call("repair", verify=verify)

    def stats(self) -> dict:
        return self.call("stats")

    def checkpoint(self) -> dict:
        return self.call("checkpoint")

    def shutdown(self) -> dict:
        """Ask the server to shut down gracefully."""
        return self.call("shutdown")
