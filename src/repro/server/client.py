"""A small blocking JSON-lines client for the repro server.

Used by tests, benchmarks, ``repro call`` and the examples.  One socket,
one outstanding request at a time; responses are matched to requests by
id.  Failures reported by the server raise :class:`ServerError` carrying
the wire error type.
"""

from __future__ import annotations

import json
import socket
from collections import deque
from typing import Iterable

from repro.datalog.errors import DatalogError
from repro.events.events import Transaction
from repro.requests import UpdateRequest
from repro.server import protocol


class ServerError(DatalogError):
    """An error response from the server (``.type`` is the wire type).

    ``retry_after`` is the server's backoff hint in seconds (set on
    ``overloaded`` errors, ``None`` otherwise).
    """

    def __init__(self, error_type: str, message: str,
                 retry_after: float | None = None):
        super().__init__(message)
        self.type = error_type
        self.retry_after = retry_after


class ConnectionLostError(DatalogError, ConnectionError):
    """The connection died (or desynchronised) mid-call.

    Raised instead of letting a later call misparse a half-read response:
    once a read times out or the stream breaks, the reply boundary is
    unknowable, so the client closes the socket and every subsequent call
    fails fast with this error.  Inherits :class:`ConnectionError` so
    existing ``except ConnectionError`` call sites keep working.
    """


def _as_feed_frame(line: bytes) -> dict | None:
    """The pushed feed payload in *line*, or ``None`` for a response line."""
    try:
        payload = json.loads(line)
    except (ValueError, UnicodeDecodeError):
        return None  # let decode_response raise the protocol error
    if isinstance(payload, dict) and "feed" in payload and "ok" not in payload:
        return payload
    return None


class DatabaseClient:
    """A blocking client for one server connection.

    >>> with DatabaseClient(port=port) as client:
    ...     client.commit("insert Works(Maria)")
    ...     client.query("Works(x)")
    [['Maria']]
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 timeout: float = 30.0, handshake: bool = True):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0
        self._broken: str | None = None
        self._frames: deque[dict] = deque()
        self.server_info: dict | None = None
        if handshake:
            try:
                self.server_info = self.call("hello")
            except BaseException:
                self.close()
                raise

    # -- plumbing --------------------------------------------------------------

    def call(self, op: str, **params) -> dict:
        """Send one request and return the result dict (or raise).

        A timeout or socket error mid-call leaves the stream position
        unknowable (the response may arrive half-read later), so the
        connection is closed and this -- and every later -- call raises
        :class:`ConnectionLostError` rather than misparsing.
        """
        if self._broken is not None:
            raise ConnectionLostError(
                f"connection is unusable after an earlier failure "
                f"({self._broken}); open a new client")
        self._next_id += 1
        request = protocol.Request(op=op, params=params, id=self._next_id)
        try:
            self._file.write(request.to_json().encode("utf-8") + b"\n")
            self._file.flush()
            line = self._read_response_line()
        except ConnectionLostError:
            raise
        except OSError as error:  # timeouts (socket.timeout) included
            self._mark_broken(f"{type(error).__name__}: {error}")
            raise ConnectionLostError(
                f"connection lost mid-call ({op}): {error}") from error
        response = protocol.decode_response(line)
        if not response.ok:
            error = response.error or {}
            retry_after = error.get("retry_after")
            raise ServerError(error.get("type", "internal"),
                              error.get("message", "unknown server error"),
                              retry_after=(float(retry_after)
                                           if retry_after is not None
                                           else None))
        if response.id is not None and response.id != self._next_id:
            raise protocol.ProtocolError(
                f"response id {response.id!r} does not match "
                f"request id {self._next_id!r}")
        return response.result or {}

    def _read_response_line(self) -> bytes:
        """Read lines until a response arrives, buffering pushed feed frames.

        A connection holding subscriptions can receive feed frames (lines
        with a ``feed`` key instead of ``ok``) interleaved with responses;
        they are queued for :meth:`next_frame` rather than misparsed.
        """
        while True:
            line = self._file.readline()
            if not line:
                self._mark_broken("server closed the connection")
                raise ConnectionLostError("server closed the connection")
            frame = _as_feed_frame(line)
            if frame is None:
                return line
            self._frames.append(frame)

    def _mark_broken(self, reason: str) -> None:
        self._broken = reason
        try:
            self.close()
        except OSError:
            pass

    @property
    def broken(self) -> str | None:
        """Why the connection is unusable (``None`` while healthy)."""
        return self._broken

    def next_frame(self, timeout: float | None = None) -> dict:
        """Block until the server pushes the next feed frame.

        Returns the pushed payload, e.g. ``{"v": 1, "feed": "sub-1",
        "seq": 3, "frame": {"kind": "delta", ...}}``.  Frames that arrived
        interleaved with earlier responses are returned first.  *timeout*
        (seconds) overrides the connection timeout for this one wait; on
        expiry the stream position is unknowable, so the connection is
        marked broken, like any other mid-read failure.
        """
        if self._frames:
            return self._frames.popleft()
        if self._broken is not None:
            raise ConnectionLostError(
                f"connection is unusable after an earlier failure "
                f"({self._broken}); open a new client")
        previous = self._sock.gettimeout()
        if timeout is not None:
            self._sock.settimeout(timeout)
        try:
            line = self._file.readline()
        except OSError as error:
            self._mark_broken(f"{type(error).__name__}: {error}")
            raise ConnectionLostError(
                f"connection lost waiting for a feed frame: {error}"
            ) from error
        finally:
            if timeout is not None and self._broken is None:
                try:
                    self._sock.settimeout(previous)
                except OSError:
                    pass
        if not line:
            self._mark_broken("server closed the connection")
            raise ConnectionLostError("server closed the connection")
        frame = _as_feed_frame(line)
        if frame is None:  # a response with no request in flight: desync
            self._mark_broken("unexpected response while waiting for a frame")
            raise ConnectionLostError(
                "received a response line while waiting for a feed frame; "
                "the stream is desynchronised")
        return frame

    @property
    def pending_frames(self) -> int:
        """Feed frames buffered and waiting for :meth:`next_frame`."""
        return len(self._frames)

    def send(self, request: UpdateRequest) -> dict:
        """Send one typed :class:`~repro.requests.UpdateRequest`."""
        wire = request.to_wire()
        return self.call(wire["op"], **wire.get("params", {}))

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "DatabaseClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- convenience wrappers --------------------------------------------------

    @staticmethod
    def _transaction_text(transaction: Transaction | str) -> str:
        if isinstance(transaction, Transaction):
            return ", ".join(
                ("insert " if e.is_insertion else "delete ") + str(e.atom())
                for e in transaction)
        return transaction

    def ping(self) -> bool:
        return bool(self.call("ping").get("pong"))

    def query(self, goal: str) -> list[list]:
        return self.call("query", goal=goal)["answers"]

    def commit(self, transaction: Transaction | str,
               on_violation: str | None = None,
               txn_id: str | None = None) -> dict:
        params: dict = {"transaction": self._transaction_text(transaction)}
        if on_violation is not None:
            params["on_violation"] = on_violation
        if txn_id is not None:
            params["txn_id"] = txn_id
        return self.call("commit", **params)

    def check(self, transaction: Transaction | str) -> dict:
        return self.call("check",
                         transaction=self._transaction_text(transaction))

    def upward(self, transaction: Transaction | str,
               predicates: Iterable[str] | None = None) -> dict:
        params: dict = {"transaction": self._transaction_text(transaction)}
        if predicates is not None:
            params["predicates"] = list(predicates)
        return self.call("upward", **params)

    def monitor(self, transaction: Transaction | str,
                conditions: Iterable[str]) -> dict:
        return self.call("monitor",
                         transaction=self._transaction_text(transaction),
                         conditions=list(conditions))

    def translate(self, requests: str | Iterable[str]) -> dict:
        if isinstance(requests, str):
            requests = [r for r in requests.split(";") if r.strip()]
        return self.call("downward", requests=list(requests))

    def repair(self, verify: bool = False) -> dict:
        return self.call("repair", verify=verify)

    def stats(self) -> dict:
        return self.call("stats")

    def health(self) -> dict:
        return self.call("health")

    def subscribe(self, goals: str | Iterable[str], *,
                  emit_empty: bool = False) -> dict:
        """Register a standing query; frames arrive via :meth:`next_frame`."""
        if isinstance(goals, str):
            goals = [goals]
        params: dict = {"goals": list(goals)}
        if emit_empty:
            params["emit_empty"] = True
        return self.call("subscribe", **params)

    def unsubscribe(self, subscription_id: str) -> dict:
        return self.call("unsubscribe", subscription_id=subscription_id)

    def checkpoint(self) -> dict:
        return self.call("checkpoint")

    def shutdown(self) -> dict:
        """Ask the server to shut down gracefully."""
        return self.call("shutdown")
