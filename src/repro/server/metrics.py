"""Request metrics: per-request-type counters and latency histograms.

The registry is deliberately dependency-free: fixed exponential latency
buckets, plain integer counters, one lock.  Everything is surfaced through
the ``stats`` request of the server protocol, so a load generator can read
its own results back over the wire.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from contextlib import contextmanager

#: Histogram bucket upper bounds, in seconds (plus a catch-all overflow).
LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class LatencyHistogram:
    """Fixed-bucket latency histogram with bucket-bound quantile estimates."""

    __slots__ = ("_counts", "count", "total_seconds", "max_seconds")

    def __init__(self) -> None:
        self._counts = [0] * (len(LATENCY_BUCKETS) + 1)
        self.count = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0

    def observe(self, seconds: float) -> None:
        self._counts[bisect_left(LATENCY_BUCKETS, seconds)] += 1
        self.count += 1
        self.total_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the q-quantile observation."""
        if not self.count:
            return 0.0
        rank = max(1, int(q * self.count + 0.5))
        seen = 0
        for index, bucket_count in enumerate(self._counts):
            seen += bucket_count
            if seen >= rank:
                if index < len(LATENCY_BUCKETS):
                    return LATENCY_BUCKETS[index]
                return self.max_seconds
        return self.max_seconds

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total_seconds": round(self.total_seconds, 6),
            "mean_seconds": round(self.total_seconds / self.count, 6)
            if self.count else 0.0,
            "max_seconds": round(self.max_seconds, 6),
            "p50_seconds": self.quantile(0.50),
            "p95_seconds": self.quantile(0.95),
            "p99_seconds": self.quantile(0.99),
        }


class MetricsRegistry:
    """Thread-safe counters plus one latency histogram per request type."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._requests: dict[str, dict] = {}
        self._counters: dict[str, int] = {}

    def observe(self, op: str, seconds: float, error: bool = False) -> None:
        """Record one request of type *op* taking *seconds*."""
        with self._lock:
            entry = self._requests.get(op)
            if entry is None:
                entry = {"errors": 0, "latency": LatencyHistogram()}
                self._requests[op] = entry
            entry["latency"].observe(seconds)
            if error:
                entry["errors"] += 1

    @contextmanager
    def time(self, op: str):
        """Time a block as one *op* request; exceptions count as errors."""
        start = time.perf_counter()
        error = False
        try:
            yield
        except BaseException:
            error = True
            raise
        finally:
            self.observe(op, time.perf_counter() - start, error=error)

    def increment(self, counter: str, amount: int = 1) -> None:
        """Bump a named counter (batches, conflicts, syncs, ...)."""
        with self._lock:
            self._counters[counter] = self._counters.get(counter, 0) + amount

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict:
        """A JSON-ready view of every counter and histogram."""
        with self._lock:
            requests = {
                op: {"errors": entry["errors"], **entry["latency"].to_dict()}
                for op, entry in sorted(self._requests.items())
            }
            counters = dict(sorted(self._counters.items()))
        return {"requests": requests, "counters": counters}
