"""Request metrics: per-request-type counters and latency histograms.

The registry is deliberately dependency-free: fixed exponential latency
buckets, plain integer counters, one lock.  Everything is surfaced through
the ``stats`` request of the server protocol, so a load generator can read
its own results back over the wire.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from repro.obs.histogram import LATENCY_BUCKETS, LatencyHistogram

__all__ = ["LATENCY_BUCKETS", "LatencyHistogram", "MetricsRegistry"]


class MetricsRegistry:
    """Thread-safe counters plus one latency histogram per request type."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._requests: dict[str, dict] = {}
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}

    def observe(self, op: str, seconds: float, error: bool = False) -> None:
        """Record one request of type *op* taking *seconds*."""
        with self._lock:
            entry = self._requests.get(op)
            if entry is None:
                entry = {"errors": 0, "latency": LatencyHistogram()}
                self._requests[op] = entry
            entry["latency"].observe(seconds)
            if error:
                entry["errors"] += 1

    @contextmanager
    def time(self, op: str):
        """Time a block as one *op* request; exceptions count as errors."""
        start = time.perf_counter()
        error = False
        try:
            yield
        except BaseException:
            error = True
            raise
        finally:
            self.observe(op, time.perf_counter() - start, error=error)

    def increment(self, counter: str, amount: int = 1) -> None:
        """Bump a named counter (batches, conflicts, syncs, ...)."""
        with self._lock:
            self._counters[counter] = self._counters.get(counter, 0) + amount

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def set_gauge(self, name: str, value: float) -> None:
        """Set a point-in-time level (queue depths, active subscribers...)."""
        with self._lock:
            self._gauges[name] = value

    def gauge(self, name: str, default: float = 0) -> float:
        with self._lock:
            return self._gauges.get(name, default)

    def snapshot(self) -> dict:
        """A JSON-ready view of every counter and histogram.

        Histograms are shipped with their buckets so clients can rebuild
        them exactly (``LatencyHistogram.from_dict``) and merge across
        servers; the summary quantile fields are still present for humans.
        """
        with self._lock:
            requests = {
                op: {"errors": entry["errors"],
                     **entry["latency"].to_dict(buckets=True)}
                for op, entry in sorted(self._requests.items())
            }
            counters = dict(sorted(self._counters.items()))
            gauges = dict(sorted(self._gauges.items()))
        payload = {"requests": requests, "counters": counters}
        if gauges:
            payload["gauges"] = gauges
        return payload
