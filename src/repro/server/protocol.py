"""The versioned JSON-lines request/response protocol.

One request per line, one response per line, UTF-8 JSON.  Request::

    {"v": 1, "id": 7, "op": "commit", "params": {"transaction": "insert P(A)"}}

Response::

    {"v": 1, "id": 7, "ok": true, "result": {...}}
    {"v": 1, "id": 7, "ok": false, "error": {"type": "parse", "message": "..."}}

The request types map 1:1 onto the Table 4.1 problems exposed by
:class:`~repro.core.processor.UpdateProcessor`:

==========  ==============================================================
op          meaning
==========  ==============================================================
hello       version/identity handshake
ping        liveness probe
query       evaluate a goal in the current state
upward      induced derived events of a transaction (Section 4 upward)
check       integrity constraint checking (5.1.1)
monitor     condition monitoring (5.1.2)
downward    view updating / downward interpretation (5.2.x)
repair      candidate repairs of an inconsistent database (5.2.3)
commit      checked, durable, group-committed transaction execution
stats       engine + per-request-type metrics snapshot
checkpoint  fold the WAL into a fresh snapshot
shutdown    graceful server shutdown (handled by the server, not here)
==========  ==============================================================

:func:`dispatch` executes one decoded request against a
:class:`~repro.server.engine.DatabaseEngine`; the asyncio server, the
blocking client's tests and in-process callers all share it, so wire
semantics cannot drift from engine semantics.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable

from repro.datalog.errors import (
    ArityError,
    ComplexityLimitExceeded,
    DatalogError,
    ParseError,
    TransactionError,
    UnknownPredicateError,
)
from repro.events.events import parse_transaction
from repro.events.requests import parse_request
from repro.problems.base import StateError
from repro.server.engine import CommitOutcome, DatabaseEngine, EngineClosedError

PROTOCOL_VERSION = 1

#: Ops the server intercepts before dispatch (they act on the server itself).
CONTROL_OPS = ("shutdown",)


class ProtocolError(DatalogError):
    """A malformed or unsupported request."""


@dataclass
class Request:
    """One decoded protocol request."""

    op: str
    params: dict = field(default_factory=dict)
    id: int | str | None = None
    version: int = PROTOCOL_VERSION

    def to_json(self) -> str:
        payload = {"v": self.version, "op": self.op}
        if self.id is not None:
            payload["id"] = self.id
        if self.params:
            payload["params"] = self.params
        return json.dumps(payload, separators=(",", ":"))


@dataclass
class Response:
    """One protocol response."""

    ok: bool
    result: dict | None = None
    error: dict | None = None
    id: int | str | None = None

    def to_json(self) -> str:
        payload: dict = {"v": PROTOCOL_VERSION, "id": self.id, "ok": self.ok}
        if self.ok:
            payload["result"] = self.result or {}
        else:
            payload["error"] = self.error or {}
        return json.dumps(payload, separators=(",", ":"))


def decode_request(line: str | bytes) -> Request:
    """Parse one request line; raises :class:`ProtocolError` when malformed."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError(f"request is not valid UTF-8: {error}") from None
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"request is not valid JSON: {error}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("request must be a JSON object")
    version = payload.get("v", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version!r} "
            f"(this server speaks {PROTOCOL_VERSION})"
        )
    op = payload.get("op")
    if not isinstance(op, str) or not op:
        raise ProtocolError("request needs a non-empty string 'op'")
    params = payload.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError("request 'params' must be an object")
    return Request(op=op, params=params, id=payload.get("id"), version=version)


def decode_response(line: str | bytes) -> Response:
    """Parse one response line (the client side of the wire)."""
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"response is not valid JSON: {error}") from None
    if not isinstance(payload, dict) or "ok" not in payload:
        raise ProtocolError("response must be a JSON object with 'ok'")
    return Response(ok=bool(payload["ok"]), result=payload.get("result"),
                    error=payload.get("error"), id=payload.get("id"))


# -- error mapping -------------------------------------------------------------

_ERROR_TYPES: tuple[tuple[type[BaseException], str], ...] = (
    (ProtocolError, "protocol"),
    (ParseError, "parse"),
    (TransactionError, "transaction"),
    (StateError, "state"),
    (UnknownPredicateError, "unknown-predicate"),
    (ArityError, "arity"),
    (ComplexityLimitExceeded, "complexity"),
    (EngineClosedError, "closed"),
    (DatalogError, "datalog"),
)


def error_type_of(error: BaseException) -> str:
    """The wire error type for an exception (most specific class wins)."""
    for cls, name in _ERROR_TYPES:
        if isinstance(error, cls):
            return name
    return "internal"


def error_response(request_id, error: BaseException | str,
                   error_type: str | None = None) -> Response:
    """Build a failure response from an exception or a message."""
    if isinstance(error, BaseException):
        return Response(ok=False, id=request_id, error={
            "type": error_type or error_type_of(error),
            "message": str(error),
        })
    return Response(ok=False, id=request_id, error={
        "type": error_type or "internal", "message": error})


# -- result serialisation ------------------------------------------------------

def _rows_to_lists(mapping) -> dict:
    return {predicate: sorted([t.value for t in row] for row in rows)
            for predicate, rows in sorted(mapping.items())}


def check_result_to_dict(result) -> dict:
    return {
        "ok": result.ok,
        "violations": _rows_to_lists(result.violations),
        "transaction": result.transaction.to_dict(),
    }


def monitor_result_to_dict(changes) -> dict:
    return {
        "activated": _rows_to_lists(changes.activated),
        "deactivated": _rows_to_lists(changes.deactivated),
        "transaction": changes.transaction.to_dict(),
    }


def repair_result_to_dict(result) -> dict:
    return {
        "repairable": result.is_repairable,
        "repairs": [t.to_dict() for t in result.repairs],
        "unverified": [t.to_dict() for t in result.unverified],
    }


def commit_outcome_to_dict(outcome: CommitOutcome) -> dict:
    payload: dict = {
        "applied": outcome.applied,
        "effective": outcome.effective.to_dict(),
    }
    if outcome.check is not None:
        payload["check"] = check_result_to_dict(outcome.check)
    if outcome.repairs is not None:
        payload["repairs"] = outcome.repairs.to_dict()
    return payload


# -- parameter helpers ---------------------------------------------------------

def _string_param(params: dict, name: str) -> str:
    value = params.get(name)
    if not isinstance(value, str) or not value.strip():
        raise ProtocolError(f"'{name}' must be a non-empty string")
    return value


def _transaction_param(params: dict):
    return parse_transaction(_string_param(params, "transaction"))


# -- handlers ------------------------------------------------------------------

def _handle_hello(engine: DatabaseEngine, params: dict) -> dict:
    return {"server": "repro", "version": PROTOCOL_VERSION,
            "ops": sorted(REQUEST_OPS + CONTROL_OPS)}


def _handle_ping(engine: DatabaseEngine, params: dict) -> dict:
    return {"pong": True}


def _handle_query(engine: DatabaseEngine, params: dict) -> dict:
    answers = engine.query(_string_param(params, "goal"))
    return {"answers": [list(row) for row in answers]}


def _handle_upward(engine: DatabaseEngine, params: dict) -> dict:
    predicates = params.get("predicates")
    if predicates is not None and (
            not isinstance(predicates, list)
            or not all(isinstance(p, str) for p in predicates)):
        raise ProtocolError("'predicates' must be a list of strings")
    return engine.upward(_transaction_param(params), predicates).to_dict()


def _handle_check(engine: DatabaseEngine, params: dict) -> dict:
    return check_result_to_dict(engine.check(_transaction_param(params)))


def _handle_monitor(engine: DatabaseEngine, params: dict) -> dict:
    conditions = params.get("conditions")
    if (not isinstance(conditions, list) or not conditions
            or not all(isinstance(c, str) for c in conditions)):
        raise ProtocolError("'conditions' must be a non-empty list of strings")
    return monitor_result_to_dict(
        engine.monitor(_transaction_param(params), conditions))


def _handle_downward(engine: DatabaseEngine, params: dict) -> dict:
    raw = params.get("requests")
    if isinstance(raw, str):
        raw = [piece for piece in raw.split(";") if piece.strip()]
    if (not isinstance(raw, list) or not raw
            or not all(isinstance(r, str) for r in raw)):
        raise ProtocolError(
            "'requests' must be a non-empty list of strings "
            "(e.g. [\"ins P(A)\", \"not del Q(B)\"])")
    return engine.downward([parse_request(piece) for piece in raw]).to_dict()


def _handle_repair(engine: DatabaseEngine, params: dict) -> dict:
    return repair_result_to_dict(engine.repair(
        verify=bool(params.get("verify", False))))


def _handle_commit(engine: DatabaseEngine, params: dict) -> dict:
    policy = params.get("on_violation")
    if policy is not None and policy not in ("reject", "maintain", "ignore"):
        raise ProtocolError(f"unknown on_violation policy: {policy!r}")
    outcome = engine.commit(_transaction_param(params), on_violation=policy)
    return commit_outcome_to_dict(outcome)


def _handle_stats(engine: DatabaseEngine, params: dict) -> dict:
    return engine.stats()


def _handle_checkpoint(engine: DatabaseEngine, params: dict) -> dict:
    engine.checkpoint()
    return {"checkpointed": True}


_HANDLERS: dict[str, Callable[[DatabaseEngine, dict], dict]] = {
    "hello": _handle_hello,
    "ping": _handle_ping,
    "query": _handle_query,
    "upward": _handle_upward,
    "check": _handle_check,
    "monitor": _handle_monitor,
    "downward": _handle_downward,
    "repair": _handle_repair,
    "commit": _handle_commit,
    "stats": _handle_stats,
    "checkpoint": _handle_checkpoint,
}

#: Every op :func:`dispatch` understands.
REQUEST_OPS = tuple(sorted(_HANDLERS))

#: Ops whose handlers do not go through a self-metering engine method;
#: :func:`dispatch` times these itself so ``stats`` covers every request type.
_DISPATCH_METERED = frozenset({"hello", "ping", "stats"})


def dispatch(engine: DatabaseEngine, request: Request) -> Response:
    """Execute one request against the engine, mapping errors to responses."""
    handler = _HANDLERS.get(request.op)
    if handler is None:
        return error_response(
            request.id,
            f"unknown op {request.op!r} (known: {', '.join(REQUEST_OPS)})",
            error_type="protocol")
    try:
        if request.op in _DISPATCH_METERED:
            with engine.metrics.time(request.op):
                result = handler(engine, request.params)
        else:  # engine ops meter themselves (query/commit/...)
            result = handler(engine, request.params)
        return Response(ok=True, id=request.id, result=result)
    except DatalogError as error:
        return error_response(request.id, error)
    except Exception as error:  # noqa: BLE001 - the wire must answer
        return error_response(request.id, error, error_type="internal")
