"""The versioned JSON-lines request/response protocol.

One request per line, one response per line, UTF-8 JSON.  Request::

    {"v": 1, "id": 7, "op": "commit", "params": {"transaction": "insert P(A)"}}

Response::

    {"v": 1, "id": 7, "ok": true, "result": {...}}
    {"v": 1, "id": 7, "ok": false, "error": {"type": "parse", "message": "..."}}

The request types map 1:1 onto the Table 4.1 problems exposed by
:class:`~repro.core.processor.UpdateProcessor`; each is a typed
:class:`~repro.requests.UpdateRequest` subclass (see :mod:`repro.requests`
for the op table).  ``shutdown`` is the one control op the server
intercepts before dispatch; ``subscribe``/``unsubscribe`` are typed
requests but also session-handled, because a subscription is bound to
the connection that registers it.  A connection holding subscriptions
additionally receives pushed *feed frames* -- lines carrying a ``feed``
key instead of ``ok``::

    {"v": 1, "feed": "sub-1", "seq": 3, "frame": {"kind": "delta", ...}}

(see docs/SUBSCRIPTIONS.md for frame kinds and ordering guarantees).

:func:`dispatch` deserialises one decoded request into its typed form and
executes it against a :class:`~repro.server.engine.DatabaseEngine`; the
asyncio server, the blocking client's tests and in-process callers all
share it, so wire semantics cannot drift from engine semantics.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.datalog.errors import (
    ArityError,
    ComplexityLimitExceeded,
    DatalogError,
    DepthLimitExceeded,
    DomainError,
    ParseError,
    RoutingError,
    SafetyError,
    StratificationError,
    SubscriptionError,
    TransactionError,
    UnavailableError,
    UnknownPredicateError,
)
from repro.problems.base import StateError
from repro.requests import REQUEST_TYPES, UpdateRequest, WireFormatError
from repro.server.engine import (
    ConflictDeferralTimeout,
    DatabaseEngine,
    EngineClosedError,
    IdempotencyError,
    TxnConflictError,
    TxnStateError,
)

PROTOCOL_VERSION = 1

#: Ops the server intercepts before dispatch (they act on the server itself).
CONTROL_OPS = ("shutdown",)

#: Every op :func:`dispatch` understands.
REQUEST_OPS = tuple(sorted(REQUEST_TYPES))


def known_ops() -> list[str]:
    """Every op a server answers (dispatchable + control), sorted."""
    return sorted(REQUEST_OPS + CONTROL_OPS)


class ProtocolError(DatalogError):
    """A malformed or unsupported request."""


@dataclass
class Request:
    """One decoded protocol request."""

    op: str
    params: dict = field(default_factory=dict)
    id: int | str | None = None
    version: int = PROTOCOL_VERSION

    def to_json(self) -> str:
        payload = {"v": self.version, "op": self.op}
        if self.id is not None:
            payload["id"] = self.id
        if self.params:
            payload["params"] = self.params
        return json.dumps(payload, separators=(",", ":"))


@dataclass
class Response:
    """One protocol response."""

    ok: bool
    result: dict | None = None
    error: dict | None = None
    id: int | str | None = None

    def to_json(self) -> str:
        payload: dict = {"v": PROTOCOL_VERSION, "id": self.id, "ok": self.ok}
        if self.ok:
            payload["result"] = self.result or {}
        else:
            payload["error"] = self.error or {}
        return json.dumps(payload, separators=(",", ":"))


def decode_request(line: str | bytes) -> Request:
    """Parse one request line; raises :class:`ProtocolError` when malformed."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError(f"request is not valid UTF-8: {error}") from None
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"request is not valid JSON: {error}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("request must be a JSON object")
    version = payload.get("v", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version!r} "
            f"(this server speaks {PROTOCOL_VERSION})"
        )
    op = payload.get("op")
    if not isinstance(op, str) or not op:
        raise ProtocolError("request needs a non-empty string 'op'")
    params = payload.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError("request 'params' must be an object")
    return Request(op=op, params=params, id=payload.get("id"), version=version)


def decode_response(line: str | bytes) -> Response:
    """Parse one response line (the client side of the wire)."""
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"response is not valid JSON: {error}") from None
    if not isinstance(payload, dict) or "ok" not in payload:
        raise ProtocolError("response must be a JSON object with 'ok'")
    return Response(ok=bool(payload["ok"]), result=payload.get("result"),
                    error=payload.get("error"), id=payload.get("id"))


# -- error mapping -------------------------------------------------------------

_ERROR_TYPES: tuple[tuple[type[BaseException], str], ...] = (
    (ProtocolError, "protocol"),
    (WireFormatError, "protocol"),
    (ParseError, "parse"),
    (TransactionError, "transaction"),
    (StateError, "state"),
    (UnknownPredicateError, "unknown-predicate"),
    (ArityError, "arity"),
    (SafetyError, "safety"),
    (StratificationError, "stratification"),
    (DomainError, "domain"),
    (ComplexityLimitExceeded, "complexity"),
    (DepthLimitExceeded, "depth-limit"),
    (ConflictDeferralTimeout, "conflict-timeout"),
    (IdempotencyError, "idempotency"),
    (RoutingError, "routing"),
    (SubscriptionError, "subscription"),
    (UnavailableError, "unavailable"),
    (TxnConflictError, "txn-conflict"),
    (TxnStateError, "txn-state"),
    (EngineClosedError, "closed"),
    (DatalogError, "datalog"),
)


def error_type_of(error: BaseException) -> str:
    """The wire error type for an exception (most specific class wins).

    An exception carrying its own wire ``type`` string -- e.g. a
    :class:`~repro.server.client.ServerError` relayed through the shard
    router -- keeps it, so typed errors survive proxying.
    """
    carried = getattr(error, "type", None)
    if isinstance(carried, str) and carried:
        return carried
    for cls, name in _ERROR_TYPES:
        if isinstance(error, cls):
            return name
    return "internal"


def error_response(request_id, error: BaseException | str,
                   error_type: str | None = None,
                   extra: dict | None = None) -> Response:
    """Build a failure response from an exception or a message.

    *extra* keys (e.g. ``retry_after`` on an ``overloaded`` error) are
    merged into the error object next to ``type`` and ``message``.
    """
    if isinstance(error, BaseException):
        payload = {"type": error_type or error_type_of(error),
                   "message": str(error)}
    else:
        payload = {"type": error_type or "internal", "message": error}
    if extra:
        payload.update(extra)
    return Response(ok=False, id=request_id, error=payload)


# -- dispatch ------------------------------------------------------------------

#: Ops whose typed requests do not go through a self-metering engine method;
#: :func:`dispatch` times these itself so ``stats`` covers every request type.
_DISPATCH_METERED = frozenset({"hello", "ping", "stats", "health"})


def dispatch(engine: DatabaseEngine, request: Request) -> Response:
    """Execute one request against the engine, mapping errors to responses."""
    if request.op not in REQUEST_TYPES:
        return error_response(
            request.id,
            f"unknown op {request.op!r} (known: {', '.join(REQUEST_OPS)})",
            error_type="protocol")
    try:
        typed = UpdateRequest.of(request.op, request.params)
        if request.op in _DISPATCH_METERED:
            with engine.metrics.time(request.op):
                result = typed.execute(engine)
        else:  # engine ops meter themselves (query/commit/...)
            result = typed.execute(engine)
        return Response(ok=True, id=request.id, result=result)
    except DatalogError as error:
        return error_response(request.id, error)
    except Exception as error:  # noqa: BLE001 - the wire must answer
        return error_response(request.id, error, error_type="internal")
