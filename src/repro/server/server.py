"""Asyncio TCP server speaking the JSON-lines protocol.

One :class:`DatabaseEngine` serves any number of connections; blocking
engine work runs on a thread pool so the event loop stays responsive.
Per-connection sessions get request timeouts; admission control sheds
load the pool cannot absorb: connections beyond ``max_connections`` and
requests beyond ``max_inflight`` get a typed ``overloaded`` error carrying
a ``retry_after`` hint (backpressure the client can act on), counted in
``server.shed``.  A request whose ``deadline_ms`` budget is already spent
is refused with a ``deadline`` error instead of doing work for a caller
that stopped waiting.  Shutdown -- whether from the ``shutdown`` request,
a signal, or :meth:`DatabaseServer.shutdown` -- stops accepting, drains
in-flight work and checkpoints the WAL.

Use :func:`run` for a foreground server (the ``repro serve`` command) and
:class:`ServerThread` to host a server inside another process (tests,
examples, notebooks).
"""

from __future__ import annotations

import asyncio
import collections
import concurrent.futures
import contextlib
import json
import logging
import threading
import time
from pathlib import Path

from repro import faults
from repro.datalog.errors import DatalogError
from repro.obs import tracer as obs
from repro.server import protocol
from repro.server.engine import DatabaseEngine

logger = logging.getLogger("repro.server")

FP_PRE_DISPATCH = faults.register(
    "server.pre_dispatch",
    "on the worker thread, before a request dispatches (a 'sleep' action "
    "deterministically triggers the per-request timeout)")
FP_SEND_FRAME = faults.register(
    "server.send_frame",
    "outbound response frame: 'drop' discards the ack, 'torn' sends a "
    "partial frame and closes -- a flaky network, simulated")
FP_FEED_FRAME = faults.register(
    "server.feed_frame",
    "outbound change-feed frame: 'drop' loses one pushed frame (the "
    "subscriber must detect the seq gap and resync), 'torn' sends a "
    "partial frame and closes")

#: Session-level ops: a subscription is bound to the connection that
#: registers it, so these never reach the thread-pool dispatcher.
FEED_OPS = ("subscribe", "unsubscribe")


class _SubState:
    """Per-subscription delivery state (wire id + monotone sequence)."""

    __slots__ = ("sub_id", "seq")

    def __init__(self) -> None:
        self.sub_id: str | None = None
        self.seq = 0


class _FeedChannel:
    """One connection's bounded change-feed queue and its drain task.

    Commit threads enqueue frames through the engine's
    :class:`~repro.server.feed.FeedBus` callbacks; enqueueing is a lock,
    an append and a ``call_soon_threadsafe`` -- it never blocks, so the
    commit path cannot stall on a slow subscriber.  The drain task on the
    event loop writes queued frames down the socket.  When the queue hits
    its capacity (the server's ``max_inflight`` admission budget) the
    subscriber is dropped: the queue is cleared, every subscription gets
    a terminal ``closed`` frame with ``error_type="feed_overflow"``, and
    the engine-side subscriptions are removed.
    """

    def __init__(self, server: "DatabaseServer",
                 writer: asyncio.StreamWriter):
        self._server = server
        self._writer = writer
        self._loop = asyncio.get_running_loop()
        self._lock = threading.Lock()
        self._queue: collections.deque = collections.deque()
        self._wake = asyncio.Event()
        self._drainer: asyncio.Task | None = None
        self._overflowed = False
        self._closed = False
        #: sub_id -> _SubState for every live subscription on this session.
        self.subs: dict[str, _SubState] = {}

    @property
    def capacity(self) -> int:
        return self._server.max_inflight

    # -- session-op handlers (event loop) --------------------------------------

    def subscribe(self, goals, emit_empty: bool = False) -> dict:
        engine = self._server.engine
        state = _SubState()
        # The callback captures the state cell; between bus registration
        # and the sub_id assignment below there is no await, so the drain
        # task cannot observe a frame before the id is known.
        info = engine.feed_subscribe(
            list(goals), lambda frame: self._enqueue(state, frame),
            emit_empty=emit_empty)
        state.sub_id = info["subscription_id"]
        self.subs[state.sub_id] = state
        if self._drainer is None or self._drainer.done():
            self._drainer = self._loop.create_task(self._drain())
        self._server.engine.metrics.increment("feed.subscribed")
        return {**info, "capacity": self.capacity}

    def unsubscribe(self, subscription_id: str) -> dict:
        result = self._server.engine.feed_unsubscribe(subscription_id)
        self.subs.pop(subscription_id, None)
        self._server.engine.metrics.increment("feed.unsubscribed")
        return result

    def close(self) -> None:
        """Session teardown: deregister everything, stop the drain task."""
        with self._lock:
            self._closed = True
            self._queue.clear()
        for sub_id in list(self.subs):
            with contextlib.suppress(DatalogError):
                self._server.engine.feed_unsubscribe(sub_id)
        self.subs.clear()
        if self._drainer is not None:
            self._drainer.cancel()

    def queue_depth(self) -> int:
        with self._lock:
            return len(self._queue)

    # -- delivery --------------------------------------------------------------

    def _enqueue(self, state: _SubState, frame: dict) -> None:
        """Bus callback; runs on committing threads.  Never blocks."""
        with self._lock:
            if self._closed or self._overflowed:
                return
            if len(self._queue) >= self.capacity:
                self._overflowed = True
                self._queue.clear()
                depth = 0
            else:
                state.seq += 1
                self._queue.append((state, state.seq, frame))
                depth = len(self._queue)
        metrics = self._server.engine.metrics
        metrics.set_gauge("feed.queue_depth", depth)
        if self._overflowed:
            metrics.increment("feed.overflow")
        with contextlib.suppress(RuntimeError):  # loop already closed
            self._loop.call_soon_threadsafe(self._wake.set)

    async def _drain(self) -> None:
        try:
            while True:
                await self._wake.wait()
                self._wake.clear()
                while True:
                    with self._lock:
                        item = (self._queue.popleft() if self._queue
                                else None)
                    if item is None:
                        break
                    state, seq, frame = item
                    await self._write_frame(state.sub_id, seq, frame)
                if self._overflowed:
                    await self._close_overflowed()
                with self._lock:
                    if self._closed:
                        return
        except (asyncio.CancelledError, ConnectionError, OSError):
            pass

    async def _close_overflowed(self) -> None:
        """Drop every subscription after an overflow (typed close)."""
        from repro.server.feed import closed_frame

        engine = self._server.engine
        final = closed_frame(
            "feed_overflow",
            f"subscriber fell more than {self.capacity} frames behind "
            "(the server's max_inflight budget); dropped -- resubscribe "
            "and re-pull")
        for sub_id, state in list(self.subs.items()):
            with contextlib.suppress(DatalogError):
                engine.feed_unsubscribe(sub_id)
            state.seq += 1
            with contextlib.suppress(Exception):
                await self._write_frame(sub_id, state.seq, final)
        self.subs.clear()
        engine.metrics.increment("feed.dropped_subscribers")
        with self._lock:
            self._overflowed = False
            self._queue.clear()
        engine.metrics.set_gauge("feed.queue_depth", 0)

    async def _write_frame(self, sub_id: str | None, seq: int,
                           frame: dict) -> None:
        payload = {"v": protocol.PROTOCOL_VERSION, "feed": sub_id,
                   "seq": seq, "frame": frame}
        data = json.dumps(payload, separators=(",", ":")).encode() + b"\n"
        action = faults.failpoint(FP_FEED_FRAME, sub_id=sub_id, seq=seq)
        if action is not None:
            if action.kind == "drop":
                return  # the frame is lost; the seq gap tells the client
            if action.kind == "torn":
                fraction = action.param if action.param is not None else 0.5
                cut = max(1, min(int(len(data) * fraction), len(data) - 1))
                self._writer.write(data[:cut])
                await self._writer.drain()
                self._writer.close()
                return
        self._writer.write(data)
        await self._writer.drain()
        self._server.engine.metrics.increment("feed.frames_sent")


class DatabaseServer:
    """The asyncio TCP front-end of one :class:`DatabaseEngine`.

    ``slow_op_threshold`` (seconds) turns on the slow-op log: any request
    whose dispatch exceeds it is logged at WARNING on the ``repro.server``
    logger -- with its span breakdown when tracing is enabled -- and
    counted in the ``server.slow_ops`` metric.
    """

    #: A ``deadline_ms`` below this (seconds) is refused outright -- the
    #: budget cannot cover even the dispatch overhead.
    MIN_DEADLINE_SECONDS = 0.001

    def __init__(self, engine: DatabaseEngine, host: str = "127.0.0.1",
                 port: int = 0, *, max_connections: int = 64,
                 request_timeout: float = 30.0, workers: int = 8,
                 max_inflight: int | None = None,
                 max_line_bytes: int = 1 << 20,
                 checkpoint_on_shutdown: bool = True,
                 slow_op_threshold: float | None = None):
        self.engine = engine
        self.host = host
        self.port = port  # rebound to the real port by start()
        self.max_connections = max_connections
        self.request_timeout = request_timeout
        #: In-flight request budget: dispatches beyond it are shed with an
        #: ``overloaded`` error instead of queueing unboundedly behind the
        #: worker pool.  Defaults to 4x the pool, enough to keep workers
        #: busy without hiding sustained overload from clients.
        self.max_inflight = (max_inflight if max_inflight is not None
                             else workers * 4)
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        self.max_line_bytes = max_line_bytes
        self.checkpoint_on_shutdown = checkpoint_on_shutdown
        self.slow_op_threshold = slow_op_threshold
        self._workers = workers
        self._server: asyncio.AbstractServer | None = None
        self._executor: concurrent.futures.ThreadPoolExecutor | None = None
        self._sessions: set[asyncio.Task] = set()
        self._active_connections = 0
        # Incremented on the event loop, decremented on worker threads --
        # hence the lock, despite the GIL making reads cheap.
        self._inflight_lock = threading.Lock()
        self._inflight = 0
        self._shutdown_event = asyncio.Event()
        self._finished = False
        #: Live per-connection feed channels (for the health gauge).
        self._feed_channels: set[_FeedChannel] = set()

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections; sets :attr:`port`."""
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=self._workers, thread_name_prefix="repro-engine")
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port,
            limit=self.max_line_bytes)
        self.port = self._server.sockets[0].getsockname()[1]
        # Surface the admission-control view through the engine's health
        # payload without the engine importing the server layer.
        if self._health_extra not in self.engine.health_extras:
            self.engine.health_extras.append(self._health_extra)

    def _health_extra(self) -> dict:
        with self._inflight_lock:
            inflight = self._inflight
        channels = list(self._feed_channels)
        return {"server": {
            "active_connections": self._active_connections,
            "max_connections": self.max_connections,
            "inflight": inflight,
            "max_inflight": self.max_inflight,
            "shed": self.engine.metrics.counter("server.shed"),
            "deadline_rejected":
                self.engine.metrics.counter("server.deadline_rejected"),
            "feed": {
                "subscriptions": sum(len(c.subs) for c in channels),
                "queue_depth": sum(c.queue_depth() for c in channels),
                "queue_capacity": self.max_inflight,
            },
        }}

    def _retry_after(self) -> float:
        """Backoff hint for shed work: a beat per queued-over-budget unit."""
        with self._inflight_lock:
            over = max(0, self._inflight - self.max_inflight)
        return round(0.05 * (over + 1), 3)

    async def serve_until_shutdown(self) -> None:
        """Block until a shutdown is requested, then wind down gracefully."""
        await self._shutdown_event.wait()
        await self.shutdown()

    def request_shutdown(self) -> None:
        """Flag the server to shut down (safe from the event loop only)."""
        self._shutdown_event.set()

    async def shutdown(self) -> None:
        """Stop accepting, drain sessions, close the engine."""
        if self._finished:
            return
        self._finished = True
        self._shutdown_event.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._sessions):
            task.cancel()
        if self._sessions:
            await asyncio.gather(*self._sessions, return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        self.engine.close(checkpoint=self.checkpoint_on_shutdown)

    # -- sessions --------------------------------------------------------------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._sessions.add(task)
        try:
            await self._session(reader, writer)
        except asyncio.CancelledError:
            pass
        finally:
            self._sessions.discard(task)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _session(self, reader: asyncio.StreamReader,
                       writer: asyncio.StreamWriter) -> None:
        if self._active_connections >= self.max_connections:
            self.engine.metrics.increment("server.refused_connections")
            self.engine.metrics.increment("server.shed")
            retry_after = self._retry_after()
            await self._send(writer, protocol.error_response(
                None,
                f"server at connection capacity "
                f"({self.max_connections}); retry after {retry_after}s",
                error_type="overloaded",
                extra={"retry_after": retry_after}))
            return
        self._active_connections += 1
        self.engine.metrics.increment("server.connections")
        channel = _FeedChannel(self, writer)
        self._feed_channels.add(channel)
        try:
            while not self._shutdown_event.is_set():
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(writer, protocol.error_response(
                        None, "request line too long", error_type="protocol"))
                    return
                if not line:
                    return  # client closed
                if not line.strip():
                    continue
                if not await self._serve_one(line, writer, channel):
                    return
        finally:
            self._feed_channels.discard(channel)
            channel.close()
            self._active_connections -= 1

    async def _serve_one(self, line: bytes, writer: asyncio.StreamWriter,
                         channel: "_FeedChannel | None" = None) -> bool:
        """Handle one request line; False ends the session."""
        try:
            request = protocol.decode_request(line)
        except protocol.ProtocolError as error:
            await self._send(writer, protocol.error_response(None, error))
            return True
        if request.op == "shutdown":
            await self._send(writer, protocol.Response(
                ok=True, id=request.id, result={"shutting_down": True}))
            self.engine.metrics.increment("server.shutdown_requests")
            self._shutdown_event.set()
            return False
        if request.op in FEED_OPS:
            await self._serve_feed_op(request, writer, channel)
            return True
        # Retry/deadline metadata stamped by ResilientClient travels as
        # params but is the server's to consume, not the typed request's.
        deadline_s, meta_error = self._consume_meta(request)
        if meta_error is not None:
            await self._send(writer, meta_error)
            return True
        with self._inflight_lock:
            admitted = self._inflight < self.max_inflight
            if admitted:
                self._inflight += 1
        if not admitted:
            self.engine.metrics.increment("server.shed")
            retry_after = self._retry_after()
            await self._send(writer, protocol.error_response(
                request.id,
                f"server over its in-flight budget ({self.max_inflight}); "
                f"retry after {retry_after}s",
                error_type="overloaded",
                extra={"retry_after": retry_after}))
            return True
        timeout = (self.request_timeout if deadline_s is None
                   else min(self.request_timeout, deadline_s))
        # Submit directly (not run_in_executor) so the in-flight slot can
        # be released from the future's done callback -- which fires both
        # when the worker finishes and when a timed-out, still-queued task
        # is successfully cancelled.
        try:
            future = self._executor.submit(self._dispatch, request)
        except RuntimeError as error:  # executor already shutting down
            self._release_inflight(None)
            await self._send(writer, protocol.error_response(
                request.id, f"server shutting down: {error}",
                error_type="closed"))
            return False
        future.add_done_callback(self._release_inflight)
        try:
            response = await asyncio.wait_for(
                asyncio.wrap_future(future), timeout=timeout)
        except asyncio.TimeoutError:
            # The worker thread keeps running to completion; only the
            # session gives up waiting (see docs/SERVER.md).
            if deadline_s is not None and deadline_s < self.request_timeout:
                self.engine.metrics.increment("server.deadline_rejected")
                response = protocol.error_response(
                    request.id,
                    f"request outlived its {deadline_s:g}s deadline budget",
                    error_type="deadline")
            else:
                self.engine.metrics.increment("server.request_timeouts")
                response = protocol.error_response(
                    request.id,
                    f"request exceeded the {self.request_timeout}s "
                    f"server timeout",
                    error_type="timeout")
        except Exception as error:
            # protocol.dispatch already maps engine errors to typed
            # responses, so anything landing here is infrastructure (an
            # injected fault, a dying executor).  One session must not
            # take the server with it -- but SimulatedCrash, a
            # BaseException, still unwinds everything by design.
            logger.exception("dispatch infrastructure failure")
            self.engine.metrics.increment("server.dispatch_failures")
            response = protocol.error_response(
                request.id, f"internal server error: {error}",
                error_type="internal")
        await self._send(writer, response)
        return True

    async def _serve_feed_op(self, request: protocol.Request,
                             writer: asyncio.StreamWriter,
                             channel: "_FeedChannel | None") -> None:
        """Handle subscribe/unsubscribe on the session's feed channel.

        Runs inline on the event loop (registration is a registry insert,
        not engine work) so the subscription is live before the response
        is acked -- a commit racing the ack can only add frames *after*
        it, never in an unobservable gap.
        """
        from repro.requests import UpdateRequest

        try:
            typed = UpdateRequest.of(request.op, request.params)
            if channel is None:
                raise DatalogError(
                    "subscriptions need a live session")  # pragma: no cover
            if request.op == "subscribe":
                result = channel.subscribe(typed.goals,
                                           emit_empty=typed.emit_empty)
            else:
                result = channel.unsubscribe(typed.subscription_id)
        except DatalogError as error:
            await self._send(writer, protocol.error_response(
                request.id, error))
            return
        except Exception as error:  # noqa: BLE001 - the wire must answer
            logger.exception("feed op failure")
            await self._send(writer, protocol.error_response(
                request.id, f"internal server error: {error}",
                error_type="internal"))
            return
        await self._send(writer, protocol.Response(
            ok=True, id=request.id, result=result))

    def _consume_meta(self, request: protocol.Request
                      ) -> tuple[float | None, protocol.Response | None]:
        """Peel ``deadline_ms``/``attempt`` off the params.

        Returns ``(deadline_seconds, error_response)``; a budget too small
        to cover even dispatch overhead is refused immediately (the caller
        has effectively stopped waiting already).
        """
        attempt = request.params.pop("attempt", None)
        if attempt is not None:
            self.engine.metrics.increment("retry.attempts")
        deadline_ms = request.params.pop("deadline_ms", None)
        if deadline_ms is None:
            return None, None
        if not isinstance(deadline_ms, (int, float)) or isinstance(
                deadline_ms, bool) or deadline_ms <= 0:
            return None, protocol.error_response(
                request.id, "'deadline_ms' must be a positive number",
                error_type="protocol")
        deadline_s = float(deadline_ms) / 1000.0
        if deadline_s < self.MIN_DEADLINE_SECONDS:
            self.engine.metrics.increment("server.deadline_rejected")
            return None, protocol.error_response(
                request.id,
                f"deadline budget of {deadline_ms:g}ms is below the "
                f"{self.MIN_DEADLINE_SECONDS * 1000:g}ms floor; refusing "
                "work the caller cannot wait for",
                error_type="deadline")
        return deadline_s, None

    def _release_inflight(self, _future) -> None:
        """Free one in-flight slot once its request truly ends.

        Attached as a done callback, so the slot is held for the request's
        *actual* lifetime on a worker thread -- a session that stops
        waiting (timeout) does not free it, because the worker is still
        busy.
        """
        with self._inflight_lock:
            self._inflight -= 1

    def _dispatch(self, request: protocol.Request) -> protocol.Response:
        """Dispatch one request on a worker thread, watching for slow ops."""
        faults.failpoint(FP_PRE_DISPATCH, op=request.op)
        started = time.perf_counter()
        with obs.span(f"request.{request.op}") as span:
            response = protocol.dispatch(self.engine, request)
        elapsed = time.perf_counter() - started
        threshold = self.slow_op_threshold
        if threshold is not None and elapsed >= threshold:
            self.engine.metrics.increment("server.slow_ops")
            detail = ""
            if span is not obs.NULL_SPAN:
                detail = "\n" + obs.format_span(span)
            logger.warning("slow op %r took %.3fs (threshold %.3fs)%s",
                           request.op, elapsed, threshold, detail)
        return response

    @staticmethod
    async def _send(writer: asyncio.StreamWriter,
                    response: protocol.Response) -> None:
        data = response.to_json().encode("utf-8") + b"\n"
        action = faults.failpoint(FP_SEND_FRAME)
        if action is not None:
            if action.kind == "drop":
                return  # the work happened; only the ack is lost
            if action.kind == "torn":
                fraction = action.param if action.param is not None else 0.5
                cut = max(1, min(int(len(data) * fraction), len(data) - 1))
                writer.write(data[:cut])
                await writer.drain()
                writer.close()
                return
        writer.write(data)
        await writer.drain()


def run(engine: DatabaseEngine, *, host: str = "127.0.0.1", port: int = 0,
        port_file: str | Path | None = None, install_signal_handlers: bool = True,
        **server_kwargs) -> None:
    """Run a server in the foreground until shutdown (``repro serve``).

    ``port_file`` gets the bound port written to it once listening -- the
    scripting hook that makes ``--port 0`` usable.
    """

    async def main() -> None:
        server = DatabaseServer(engine, host, port, **server_kwargs)
        await server.start()
        if install_signal_handlers:
            import signal

            loop = asyncio.get_running_loop()
            for signum in (signal.SIGINT, signal.SIGTERM):
                with contextlib.suppress(NotImplementedError, ValueError):
                    loop.add_signal_handler(signum, server.request_shutdown)
        if port_file is not None:
            # Atomic write: pollers must never observe an empty file.
            target = Path(port_file)
            temporary = target.with_name(target.name + ".tmp")
            temporary.write_text(f"{server.port}\n")
            temporary.replace(target)
        served = getattr(engine, "description", None)
        if served is None:
            store = getattr(engine, "store", None)
            served = (str(store.directory) if store is not None
                      else type(engine).__name__)
        print(f"repro: serving {served} "
              f"on {server.host}:{server.port}", flush=True)
        await server.serve_until_shutdown()

    asyncio.run(main())


class ServerThread:
    """A server hosted on a background thread (tests and examples).

    >>> with ServerThread(engine) as port:
    ...     client = DatabaseClient(port=port)
    """

    def __init__(self, engine: DatabaseEngine, **server_kwargs):
        self._engine = engine
        self._kwargs = server_kwargs
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: DatabaseServer | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self.port: int | None = None

    def start(self) -> int:
        """Start serving; returns the bound port."""
        self._thread = threading.Thread(
            target=self._run, name="repro-server", daemon=True)
        self._thread.start()
        self._started.wait(timeout=10)
        if self._startup_error is not None:
            raise self._startup_error
        if self.port is None:
            raise RuntimeError("server failed to start within 10s")
        return self.port

    def _run(self) -> None:
        async def main() -> None:
            try:
                self._server = DatabaseServer(self._engine, **self._kwargs)
                await self._server.start()
                self._loop = asyncio.get_running_loop()
                self.port = self._server.port
            except BaseException as error:  # surfaces in start()
                self._startup_error = error
                self._started.set()
                raise
            self._started.set()
            await self._server.serve_until_shutdown()

        try:
            asyncio.run(main())
        except BaseException:
            if not self._started.is_set():
                self._started.set()

    def stop(self, timeout: float = 10.0) -> None:
        """Request a graceful shutdown and join the thread."""
        if self._loop is not None and self._server is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._server.request_shutdown)
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def __enter__(self) -> int:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
