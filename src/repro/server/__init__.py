"""The serving subsystem: a concurrent, durable update-processing server.

The paper's thesis is a *uniform* update-processing interface; this package
is that interface made servable:

- :mod:`repro.server.engine` -- :class:`DatabaseEngine`, the thread-safe
  core: single-writer/multi-reader locking, group commit (one WAL fsync and
  one integrity check per batch), optimistic conflict deferral;
- :mod:`repro.server.protocol` -- the versioned JSON-lines protocol whose
  request types map 1:1 onto the Table 4.1 problems;
- :mod:`repro.server.server` -- the asyncio TCP server (timeouts,
  connection backpressure, graceful checkpointing shutdown);
- :mod:`repro.server.client` -- a small blocking client;
- :mod:`repro.server.resilient` -- :class:`ResilientClient`, the
  self-healing front: reconnect, jittered backoff, deadline budgets and
  txn-id-stamped exactly-once commit retries;
- :mod:`repro.server.metrics` -- per-request-type counters and latency
  histograms, surfaced through the ``stats`` request.

``repro serve DIR`` / ``repro call OP`` are the CLI entry points.
"""

from repro.server.engine import (
    CommitOutcome,
    DatabaseEngine,
    EngineClosedError,
    IdempotencyError,
    RWLock,
    checked_commit,
)
from repro.server.metrics import LatencyHistogram, MetricsRegistry
from repro.server.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    Response,
    decode_request,
    decode_response,
    dispatch,
)
from repro.server.client import (
    ConnectionLostError,
    DatabaseClient,
    ServerError,
)
from repro.server.resilient import (
    DeadlineExceeded,
    ResilientClient,
    RetriesExhausted,
)
from repro.server.server import DatabaseServer, ServerThread, run

__all__ = [
    "CommitOutcome",
    "ConnectionLostError",
    "DatabaseClient",
    "DatabaseEngine",
    "DatabaseServer",
    "DeadlineExceeded",
    "EngineClosedError",
    "IdempotencyError",
    "LatencyHistogram",
    "MetricsRegistry",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Request",
    "Response",
    "ResilientClient",
    "RetriesExhausted",
    "RWLock",
    "ServerError",
    "ServerThread",
    "checked_commit",
    "decode_request",
    "decode_response",
    "dispatch",
    "run",
]
