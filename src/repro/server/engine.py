"""A thread-safe serving engine over ``DurableDatabase`` + ``UpdateProcessor``.

:class:`DatabaseEngine` is the concurrency layer the paper's library never
needed: it serialises writers, lets readers run concurrently, and batches
pending commits into **group commits** -- one WAL fsync and one
transition-program integrity check cover a whole batch of non-conflicting
transactions instead of one each.

Concurrency model
-----------------
- *Single writer, multiple readers.*  A batch commit holds the write lock;
  ``query`` requests share the read lock.  Requests that go through the
  update processor's cached interpreters (``check``, ``upward``,
  ``monitor``, ``downward``, ``repair``) additionally serialise on an
  interpreter mutex, because the interpreters memoise old-state
  materialisations and are not re-entrant.
- *Group commit.*  ``commit`` enqueues the transaction and the first thread
  through the batch lock becomes the leader: it drains the queue, packs up
  to ``max_batch`` transactions with pairwise-disjoint fact sets into one
  batch, integrity-checks each member and their union against the shared
  old state, appends them to the WAL, fsyncs once, and only *then* wakes
  the waiters -- an acknowledged commit is always on disk.  Followers find
  their entry already committed by the time they acquire the lock.
- *Optimistic conflict handling.*  Two pending transactions that touch the
  same fact (overlapping event sets) never share a batch; the later one is
  deferred to the next batch and re-validated against the new state.
  Batch members commute (disjoint fact sets) and batches are sequential,
  so the *applied* history is serializable.  Reject semantics are enforced
  per member: a batch only fast-commits when every member passes its own
  integrity check against the batch-start state *and* the merged batch
  passes; otherwise the slow path executes the batch serially, so a
  transaction that would be rejected on its own is never smuggled in by
  its batch mates.  (One theoretical gap remains: three or more
  transactions whose constraint interactions violate at every intermediate
  prefix but not at the endpoints can fast-commit together although a
  strictly serial execution would reject one -- see docs/SERVER.md.)
- *Exactly-once identity.*  A commit stamped with a ``txn_id`` is
  remembered: its outcome is written into the WAL alongside its events and
  kept in a bounded dedup table (:class:`repro.core.durable.TxnDedupTable`)
  that recovery rebuilds, so a retry -- after a dropped ack, a deferral
  timeout, or a crash between fsync and ack -- returns the original result
  instead of double-applying.  A duplicate arriving while the first
  attempt is still queued joins its wait instead of enqueuing again.
- *Warm derived-state cache.*  The interpreters memoise the old-state
  materialisation of every derived predicate.  A fast-path commit computes
  its integrity check as a *full-coverage* upward interpretation and, after
  applying the batch, **advances** the memoised extensions with the induced
  events instead of invalidating them (``cache_mode="advance"``); readers
  interleaved with commits therefore keep hitting warm state.  Slow-path
  commits, unchecked commits, checkpoints and advance failures fall back to
  full invalidation.  Surfaced as ``cache.advance`` / ``cache.invalidate``
  / ``cache.rematerialize`` counters and a ``cache_epoch`` in ``stats``;
  see docs/SERVER.md for the lifecycle table.
"""

from __future__ import annotations

import logging
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro import faults
from repro.core.durable import DurableDatabase, transaction_digest
from repro.core.processor import UpdateProcessor
from repro.datalog.compile_plan import resolve_engine
from repro.datalog.errors import DatalogError, TransactionError
from repro.events.events import Transaction
from repro.interpretations.downward import DownwardOptions
from repro.interpretations.upward import UpwardOptions
from repro.interpretations.maintainers import (
    CacheMode,
    CountingMaintainer,
    StateMaintainer,
    create_maintainer,
)
from repro.datalog.errors import SubscriptionError
from repro.obs import tracer as obs
from repro.problems import ICCheckResult
from repro.problems.base import StateError
from repro.server.feed import BoundGoal, FeedBus, parse_goals
from repro.server.metrics import MetricsRegistry

logger = logging.getLogger("repro.server.engine")

FP_PRE_BATCH_MERGE = faults.register(
    "engine.pre_batch_merge",
    "group commit: batch claimed, before its transactions are merged or "
    "checked (crash loses the whole unacknowledged batch)")
FP_POST_CHECK_PRE_ACK = faults.register(
    "engine.post_check_pre_ack",
    "group commit: integrity checks passed, before anything reaches the "
    "WAL (crash: checked but never applied, nothing may survive)")
FP_MID_CACHE_ADVANCE = faults.register(
    "engine.mid_cache_advance",
    "group commit: batch appended (unfsynced), before the derived-state "
    "caches advance (crash: flushed-but-unacked, may or may not survive)")
FP_PRE_ACK = faults.register(
    "engine.pre_ack",
    "after the WAL fsync, before waiters are acknowledged (crash: the "
    "batch is durable but no client ever saw an ack)")
FP_FEED_PUBLISH = faults.register(
    "engine.feed_publish",
    "change feed: commit durable, before its frame is handed to the "
    "subscription bus (crash: the commit survives recovery but no "
    "subscriber ever saw a frame for it -- they must resync, never see "
    "a phantom or duplicate)")
FP_PREPARE_WRITTEN = faults.register(
    "twopc.prepare_written",
    "2PC participant: prepared line fsynced, before the yes-vote returns "
    "to the coordinator (crash: a durable in-doubt vote nobody counted)")
FP_DECIDE_PRE_ACK = faults.register(
    "twopc.decide_pre_ack",
    "2PC participant: decision applied and durable, before the ack returns "
    "to the coordinator (crash: the classic dropped-ack; a retried decide "
    "must replay the recorded outcome)")


class EngineClosedError(DatalogError):
    """Raised when a request reaches an engine after :meth:`close`."""


class ConflictDeferralTimeout(DatalogError):
    """A ``commit(timeout=...)`` expired before its batch acknowledged it.

    When the entry could be withdrawn from the pending queue the
    transaction was definitely **not** applied; when a batch leader had
    already claimed it, it *may still be applied* -- the message says
    which.  A commit stamped with a ``txn_id`` is safe to retry as-is in
    either case: the dedup table returns the recorded outcome if the first
    attempt went through.  Only unstamped commits need to re-query before
    retrying the ambiguous case.
    """


class IdempotencyError(DatalogError):
    """A ``txn_id`` was reused with a *different* transaction body.

    Retrying the same commit is the point of idempotency keys; submitting
    new work under an old key is always a client bug, and silently
    returning the old outcome would hide it.
    """


class TxnStateError(DatalogError):
    """A 2PC decision arrived for a transaction in the wrong state.

    A ``commit`` decision for a transaction this participant never
    prepared (or already aborted) is a protocol violation -- the
    coordinator only decides commit after counting *every* yes-vote, so a
    missing prepare means lost durability, which must fail loudly rather
    than silently apply.
    """


class TxnConflictError(DatalogError):
    """A commit or prepare touches fact keys locked by an in-flight 2PC vote.

    Between prepare and decision a participant must neither apply nor
    promise conflicting writes, or the coordinator's commit decision could
    become unappliable.  Safe to retry: the lock clears when the in-doubt
    transaction resolves.
    """


class RWLock:
    """A writer-preferring read-write lock (stdlib has none)."""

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._readers_ok = threading.Condition(self._mutex)
        self._writers_ok = threading.Condition(self._mutex)
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    @contextmanager
    def read(self):
        with self._mutex:
            while self._writer or self._writers_waiting:
                self._readers_ok.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._mutex:
                self._readers -= 1
                if not self._readers:
                    self._writers_ok.notify()

    @contextmanager
    def write(self):
        with self._mutex:
            self._writers_waiting += 1
            while self._writer or self._readers:
                self._writers_ok.wait()
            self._writers_waiting -= 1
            self._writer = True
        try:
            yield
        finally:
            with self._mutex:
                self._writer = False
                self._writers_ok.notify()
                self._readers_ok.notify_all()


@dataclass
class CommitOutcome:
    """Result of one checked, durable commit."""

    applied: bool
    #: The transaction as requested.
    requested: Transaction
    #: The effective (normalised) events actually applied; empty on reject.
    effective: Transaction = field(default_factory=Transaction)
    #: The integrity verdict of this transaction's own check, when one ran
    #: (None when the database has no constraints, the policy is ``ignore``
    #: or the old state was already inconsistent).
    check: ICCheckResult | None = None
    #: Repair events added by the ``maintain`` policy.
    repairs: Transaction | None = None

    def to_dict(self) -> dict:
        """A JSON-ready representation (the ``commit`` wire shape)."""
        payload: dict = {
            "applied": self.applied,
            "effective": self.effective.to_dict(),
        }
        if self.check is not None:
            payload["check"] = self.check.to_dict()
        if self.repairs is not None:
            payload["repairs"] = self.repairs.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "CommitOutcome":
        """Inverse of :meth:`to_dict`.

        The requested transaction is not carried on the wire; the effective
        one stands in for it.
        """
        effective = Transaction.from_dict(payload.get("effective", []))
        check = payload.get("check")
        repairs = payload.get("repairs")
        return cls(
            applied=bool(payload.get("applied")),
            requested=effective,
            effective=effective,
            check=ICCheckResult.from_dict(check) if check is not None else None,
            repairs=(Transaction.from_dict(repairs)
                     if repairs is not None else None),
        )

    def __bool__(self) -> bool:
        return self.applied


def checked_commit(processor: UpdateProcessor, transaction: Transaction,
                   apply: Callable[[Transaction], object],
                   on_violation: str = "reject") -> CommitOutcome:
    """The single checked-commit path shared by REPL, engine and server.

    Integrity-checks *transaction* against *processor*'s database, then
    durably applies it through the *apply* callback (``journal.commit``,
    ``durable.commit`` ...) and invalidates the processor's state caches.

    ``on_violation`` follows :meth:`UpdateProcessor.execute`: ``reject``
    refuses violating transactions, ``maintain`` extends them with the
    smallest repair, ``ignore`` skips the check.  When the *current* state
    is already inconsistent the check is skipped (the paper's methods
    require a consistent old state), matching the REPL's historic
    behaviour.
    """
    if on_violation not in ("reject", "maintain", "ignore"):
        raise ValueError(f"unknown on_violation policy: {on_violation!r}")
    db = processor.db
    transaction.check_base_only(db)
    check_result: ICCheckResult | None = None
    repairs: Transaction | None = None
    to_apply = transaction
    if on_violation != "ignore" and db.constraints:
        try:
            check_result = processor.check(transaction)
        except StateError:
            check_result = None  # inconsistent old state: nothing to protect
        if check_result is not None and not check_result.ok:
            if on_violation == "reject":
                return CommitOutcome(False, transaction, check=check_result)
            from repro.core.maintenance import maintain_iteratively

            chosen = maintain_iteratively(db, transaction).best()
            if chosen is None:
                return CommitOutcome(False, transaction, check=check_result)
            repairs = Transaction(chosen.events - transaction.events)
            to_apply = chosen
    effective = to_apply.normalized(db)
    apply(to_apply)
    processor.invalidate_state_caches()
    return CommitOutcome(True, transaction, effective, check_result, repairs)


class _Pending:
    """One queued commit awaiting its batch."""

    __slots__ = ("transaction", "policy", "done", "outcome", "error",
                 "txn_id", "digest")

    def __init__(self, transaction: Transaction, policy: str,
                 txn_id: str | None = None, digest: str | None = None):
        self.transaction = transaction
        self.policy = policy
        self.txn_id = txn_id
        self.digest = digest
        self.done = threading.Event()
        self.outcome: CommitOutcome | None = None
        self.error: BaseException | None = None

    def fact_keys(self) -> frozenset:
        return frozenset((e.predicate, e.args) for e in self.transaction)

    def finish(self, outcome: CommitOutcome | None = None,
               error: BaseException | None = None) -> None:
        self.outcome = outcome
        self.error = error
        self.done.set()


@dataclass(frozen=True)
class _PreparedTxn:
    """A durable 2PC yes-vote held by this participant (keys are locked)."""

    transaction: Transaction
    digest: str
    keys: frozenset


class DatabaseEngine:
    """Concurrent, durable serving engine -- the server's core.

    Parameters
    ----------
    store:
        the durable database to serve.
    max_batch:
        group-commit width: at most this many pending transactions share
        one WAL fsync and one integrity check.
    on_violation:
        default commit policy (``reject`` / ``maintain`` / ``ignore``);
        individual commits may override it.
    cache_mode:
        the :class:`~repro.interpretations.maintainers.StateMaintainer`
        strategy (a :class:`CacheMode` or its string spelling) for the
        memoised derived state on a fast-path commit: ``advance``
        (default) patches it with the commit's own induced events (the
        upward interpretation the integrity check already computes), so
        interleaved readers keep a warm cache; ``invalidate`` always
        drops it, forcing the next read to re-materialise -- the
        pre-delta-maintenance behaviour, kept as a baseline and escape
        hatch; ``counting`` maintains per-tuple derivation counts
        incrementally *during* the commit, so check + maintenance cost
        scales with the transaction instead of the database (see
        docs/IVM.md; requires a non-recursive program).  Slow-path
        commits, unchecked commits and checkpoints always reset the
        maintainer, whatever the mode.
    eval_engine:
        evaluation engine for every bottom-up fixpoint the engine runs
        (integrity checks, upward/downward interpretations, query
        materialisation): ``"compiled"`` (closure-chain join plans, the
        default) or ``"interpreted"`` (the tuple-at-a-time oracle); see
        docs/EVALUATION.md.
    """

    def __init__(self, store: DurableDatabase, *, max_batch: int = 64,
                 on_violation: str = "reject", simplify: bool = True,
                 metrics: MetricsRegistry | None = None,
                 cache_mode: CacheMode | str = CacheMode.ADVANCE,
                 eval_engine: str | None = None):
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if on_violation not in ("reject", "maintain", "ignore"):
            raise ValueError(f"unknown on_violation policy: {on_violation!r}")
        # Resolve now so a bad name fails at open, not mid-commit.
        self._eval_engine = resolve_engine(eval_engine)
        self._store = store
        self._processor = UpdateProcessor(
            store.db, simplify=simplify,
            upward_options=UpwardOptions(engine=eval_engine),
            downward_options=DownwardOptions(engine=eval_engine))
        self._max_batch = max_batch
        self._policy = on_violation
        self._cache_mode = CacheMode.of(cache_mode)
        #: Bumped on every full cache invalidation; readers can compare
        #: epochs across ``stats`` calls to see whether their reads stayed
        #: on warm state.
        self._cache_epoch = 0
        self.metrics = metrics or MetricsRegistry()
        #: Standing-query subscriptions over derived predicates; commits
        #: publish their induced deltas here (see docs/SUBSCRIPTIONS.md).
        self.feed = FeedBus(self.metrics)
        self._processor.on_cache_event = self._record_cache_event
        self._maintainer = create_maintainer(self._cache_mode,
                                             self._processor)
        self._maintainer.on_event = self._record_ivm_event
        if isinstance(self._maintainer, CountingMaintainer):
            # Eager bootstrap: pay the one-time count materialisation at
            # open (and fail fast on recursive programs), then record the
            # compiled delta-rule count for observability.
            self._maintainer.bootstrap()
            self.metrics.increment(
                "ivm.delta_rules",
                self._maintainer.counting_engine().n_delta_rules)
        self._rwlock = RWLock()
        self._interp_lock = threading.Lock()
        self._batch_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._pending: list[_Pending] = []
        #: txn_id -> its queued/in-batch entry; a duplicate arriving while
        #: the first attempt is still running joins it instead of enqueuing
        #: a second copy.  Guarded by ``_pending_lock``.
        self._inflight: dict[str, _Pending] = {}
        #: Extra ``health()`` payload providers (zero-arg callables
        #: returning dicts) -- the server layer registers its admission
        #: counters here without the engine importing it.
        self.health_extras: list[Callable[[], dict]] = []
        #: In-flight 2PC votes by ``txn_id``; guarded by the write lock.
        #: Seeded from the store's in-doubt set so recovered votes keep
        #: their fact keys locked until the coordinator resolves them.
        self._prepared: dict[str, _PreparedTxn] = {
            txn_id: _PreparedTxn(
                transaction, digest,
                frozenset((e.predicate, e.args) for e in transaction))
            for txn_id, (digest, transaction) in store.in_doubt.items()
        }
        self._closed = False

    def _record_cache_event(self, kind: str) -> None:
        """Processor cache-lifecycle hook -> metrics, tracing, epoch."""
        self.metrics.increment(f"cache.{kind}")
        obs.add(f"cache.{kind}")
        if kind == "invalidate":
            self._cache_epoch += 1

    def _record_ivm_event(self, kind: str) -> None:
        """Maintainer hook -> ``ivm.*`` metrics (bootstrap, rederive...)."""
        self.metrics.increment(f"ivm.{kind}")
        obs.add(f"ivm.{kind}")

    @classmethod
    def open(cls, directory, initial=None, *,
             dedup_capacity: int | None = None, **kwargs) -> "DatabaseEngine":
        """Open (or create) a durable database directory and wrap it."""
        store_kwargs = {}
        if dedup_capacity is not None:
            store_kwargs["dedup_capacity"] = dedup_capacity
        store = DurableDatabase.open(directory, initial=initial,
                                     **store_kwargs)
        return cls(store, **kwargs)

    # -- introspection ---------------------------------------------------------

    @property
    def store(self) -> DurableDatabase:
        """The underlying durable store."""
        return self._store

    @property
    def db(self):
        """The live in-memory database (do not mutate directly)."""
        return self._store.db

    @property
    def processor(self) -> UpdateProcessor:
        """The shared update processor (serialise access when threading)."""
        return self._processor

    @property
    def cache_mode(self) -> CacheMode:
        """The configured derived-state maintenance strategy."""
        return self._cache_mode

    @property
    def maintainer(self) -> StateMaintainer:
        """The state maintainer selected by ``cache_mode``."""
        return self._maintainer

    @property
    def eval_engine(self) -> str:
        """The resolved evaluation engine (``"compiled"``/``"interpreted"``)."""
        return self._eval_engine

    def _ensure_open(self) -> None:
        if self._closed:
            raise EngineClosedError("engine is closed")

    @property
    def in_doubt(self) -> tuple[str, ...]:
        """ids of 2PC votes awaiting a decision (their fact keys are locked)."""
        return tuple(sorted(self._prepared))

    # -- read requests ---------------------------------------------------------

    def query(self, goal: str) -> list[tuple]:
        """Answer a query; truly concurrent (fresh evaluator per call)."""
        self._ensure_open()
        with self.metrics.time("query"), self._rwlock.read():
            return self.db.query(goal)

    def _interpret(self, op: str, fn: Callable):
        self._ensure_open()
        with self.metrics.time(op), self._rwlock.read(), self._interp_lock:
            return fn()

    def check(self, transaction: Transaction) -> ICCheckResult:
        """Integrity checking (5.1.1) without applying."""
        return self._interpret("check", lambda: self._processor.check(transaction))

    def upward(self, transaction: Transaction,
               predicates: Iterable[str] | None = None):
        """Induced derived events of a hypothetical transaction."""
        return self._interpret(
            "upward", lambda: self._processor.upward(transaction, predicates))

    def monitor(self, transaction: Transaction,
                conditions: Iterable[str] | None = None):
        """Condition monitoring (5.1.2)."""
        return self._interpret(
            "monitor", lambda: self._processor.monitor(transaction, conditions))

    def downward(self, requests):
        """View updating / downward interpretation (5.2)."""
        return self._interpret(
            "downward", lambda: self._processor.downward(requests))

    def repair(self, verify: bool = False):
        """Candidate repairs of an inconsistent database (5.2.3)."""
        return self._interpret(
            "repair", lambda: self._processor.repair(verify=verify))

    def stats(self) -> dict:
        """Engine + metrics snapshot (the ``stats`` protocol request)."""
        self._ensure_open()
        with self._rwlock.read():
            db = self.db
            engine = {
                "directory": str(self._store.directory),
                "facts": db.fact_count(),
                "rules": len(db.rules),
                "constraints": len(db.constraints),
                "log_length": self._store.log_length(),
                "max_batch": self._max_batch,
                "on_violation": self._policy,
                "cache_mode": self._cache_mode.value,
                "eval_engine": self._eval_engine,
                "cache_epoch": self._cache_epoch,
                "dedup_size": len(self._store.txns),
                "dedup_capacity": self._store.txns.capacity,
                "in_doubt": len(self._prepared),
                "feed_subscriptions": self.feed.active,
                "feed_sourcing": ("delta" if self._maintainer.sources_deltas
                                  else "diff"),
            }
        snapshot = {"engine": engine, **self.metrics.snapshot()}
        tracer = obs.get_tracer()
        if tracer is not None:
            snapshot["tracing"] = tracer.aggregates()
        return snapshot

    #: Counters worth repeating in the (cheap, always-answerable) health
    #: payload: the ones a load balancer or retrying client acts on.
    _HEALTH_COUNTERS = ("server.shed", "server.deadline_rejected",
                       "retry.attempts", "dedup.hit",
                       "commit.deferral_timeouts")

    def health(self) -> dict:
        """Liveness/readiness snapshot (the ``health`` protocol request).

        Deliberately lock-free and answerable on a closed engine: health
        must keep responding while the server drains or a writer is stuck,
        which is exactly when callers need it.  ``ready`` goes false once
        :meth:`close` ran.  The server layer appends its admission-control
        view through :attr:`health_extras`.
        """
        payload = {
            "live": True,
            "ready": not self._closed,
            "wal": {
                "directory": str(self._store.directory),
                "log_length": self._store.log_length(),
            },
            "cache": {"mode": self._cache_mode.value,
                      "epoch": self._cache_epoch},
            "dedup": {"size": len(self._store.txns),
                      "capacity": self._store.txns.capacity},
            "in_doubt": sorted(self._prepared),
            "feed": {"subscriptions": self.feed.active},
            "counters": {name: self.metrics.counter(name)
                         for name in self._HEALTH_COUNTERS},
        }
        for provider in list(self.health_extras):
            try:
                extra = provider()
            except Exception:  # health never fails on a broken provider
                logger.exception("health extras provider failed")
                continue
            if isinstance(extra, dict):
                payload.update(extra)
        return payload

    # -- change-feed subscriptions ---------------------------------------------

    def feed_subscribe(self, goals, callback: Callable[[dict], None], *,
                       emit_empty: bool = False) -> dict:
        """Register a standing query; *callback* receives each frame.

        *goals* is a list of goal strings -- bare derived predicate names
        or atoms with constants at bound positions (``"Unemp(Maria)"``).
        Goals over base or unknown predicates raise
        :class:`SubscriptionError`: the feed carries *induced* deltas, so
        only derived predicates can be watched.  Returns the subscription
        description (``subscription_id``, goals, predicates, the current
        cache epoch).

        The callback runs on committing threads and must be cheap and
        non-blocking; a callback that raises is silently unsubscribed.
        """
        self._ensure_open()
        parsed = self._check_goals(goals)
        sub = self.feed.subscribe(parsed, callback, emit_empty=emit_empty)
        return {**sub.describe(), "epoch": self._cache_epoch}

    def feed_unsubscribe(self, subscription_id: str) -> dict:
        """Deregister a subscription; unknown ids raise a typed error."""
        self._ensure_open()
        if not isinstance(subscription_id, str) or not subscription_id:
            raise SubscriptionError(
                "unsubscribe requires a subscription_id string")
        if not self.feed.unsubscribe(subscription_id):
            raise SubscriptionError(
                f"unknown subscription_id: {subscription_id!r}")
        return {"unsubscribed": subscription_id}

    def _check_goals(self, goals) -> tuple[BoundGoal, ...]:
        """Parse and validate goal strings against the live schema."""
        parsed = parse_goals(goals)
        with self._rwlock.read():
            schema = self.db.schema
            for goal in parsed:
                if schema.is_base(goal.predicate):
                    raise SubscriptionError(
                        f"cannot subscribe to base predicate "
                        f"{goal.predicate!r}: the change feed carries "
                        "induced deltas of derived predicates")
                if not schema.is_derived(goal.predicate):
                    raise SubscriptionError(
                        f"unknown predicate: {goal.predicate!r}")
                if (goal.arity is not None
                        and goal.arity != schema.arity(goal.predicate)):
                    raise SubscriptionError(
                        f"goal arity {goal.arity} does not match "
                        f"{goal.predicate!r} (arity "
                        f"{schema.arity(goal.predicate)})")
        return parsed

    def _feed_extents(self, predicates) -> dict[str, frozenset] | None:
        """Full extensions of the watched predicates, or None on failure.

        This is the diff-fallback sourcing path (``invalidate`` mode, and
        any commit whose maintainer produced no delta): it re-materialises
        through the maintainer's read path, so its cost scales with the
        database, not the transaction -- exactly why the counting-sourced
        feed exists (see benchmarks/test_bench_subscriptions.py).
        """
        out: dict[str, frozenset] = {}
        for predicate in predicates:
            try:
                out[predicate] = frozenset(
                    self._maintainer.extension(predicate))
            except DatalogError:
                return None
        return out

    def _feed_publish_delta(self, *, txn_id: str | None, result,
                            before: dict[str, frozenset] | None) -> None:
        """Push one frame for an applied commit (never fails the commit).

        Sourcing is maintainer-aware: when *result* (an ``UpwardResult``
        from the counting/advance fast path) is present its induced events
        are the frame; otherwise the *before* snapshot taken pre-apply is
        diffed against a fresh post-apply materialisation.  When neither
        is available the subscribers get a ``resync`` marker instead of a
        silently wrong delta.
        """
        if not self.feed.active:
            return
        faults.failpoint(FP_FEED_PUBLISH, txn_id=txn_id)
        epoch = self._cache_epoch
        try:
            if result is not None:
                covered = getattr(result, "covered", None)
                if (covered is not None
                        and not self.feed.watched_predicates() <= covered):
                    self.feed.publish_resync(epoch=epoch,
                                             reason="partial-coverage")
                    return
                self.feed.publish_delta(txn_id=txn_id, epoch=epoch,
                                        inserted=result.insertions,
                                        deleted=result.deletions)
                return
            if before is None:
                self.feed.publish_resync(epoch=epoch,
                                         reason="uncovered-commit")
                return
            after = self._feed_extents(before.keys())
            if after is None:
                self.feed.publish_resync(epoch=epoch,
                                         reason="rematerialise-failed")
                return
            self.feed.publish_delta(
                txn_id=txn_id, epoch=epoch,
                inserted={p: after[p] - before[p] for p in before},
                deleted={p: before[p] - after[p] for p in before})
        except Exception:
            logger.exception("change-feed publish failed")

    def _feed_before_snapshot(self, result) -> dict[str, frozenset] | None:
        """Pre-apply extents of the watched predicates, when a diff will
        be needed (no maintainer-sourced delta)."""
        if result is not None or not self.feed.active:
            return None
        predicates = self.feed.watched_predicates()
        if not predicates:
            return None
        return self._feed_extents(predicates)

    def _feed_resync(self, reason: str) -> None:
        """Tell subscribers delta coverage was lost (never raises)."""
        if not self.feed.active:
            return
        try:
            self.feed.publish_resync(epoch=self._cache_epoch, reason=reason)
        except Exception:
            logger.exception("change-feed resync publish failed")

    # -- write requests --------------------------------------------------------

    @staticmethod
    def _check_txn_id(txn_id: str) -> None:
        if (not isinstance(txn_id, str) or not txn_id or len(txn_id) > 128
                or any(c.isspace() for c in txn_id)):
            raise IdempotencyError(
                "txn_id must be a non-empty string of at most 128 "
                "non-whitespace characters")

    def _admit(self, transaction: Transaction, policy: str, txn_id: str
               ) -> "tuple[_Pending | CommitOutcome, bool]":
        """Resolve one txn-stamped commit against the dedup/in-flight state.

        Returns ``(slot, fresh)``: the recorded :class:`CommitOutcome` for
        a completed duplicate, the existing :class:`_Pending` for a running
        duplicate (the caller joins its wait), or a freshly enqueued entry
        (``fresh`` is True only then).  Must be called under
        ``_pending_lock``.
        """
        digest = transaction_digest(transaction)
        record = self._store.txns.get(txn_id)
        if record is not None:
            if record.digest != digest:
                raise IdempotencyError(
                    f"txn_id {txn_id!r} was already used for a different "
                    "transaction; idempotency keys must be unique per body")
            self.metrics.increment("dedup.hit")
            obs.add("dedup.hit")
            return CommitOutcome.from_dict(record.outcome), False
        existing = self._inflight.get(txn_id)
        if existing is not None:
            if existing.digest != digest:
                raise IdempotencyError(
                    f"txn_id {txn_id!r} is in flight for a different "
                    "transaction; idempotency keys must be unique per body")
            self.metrics.increment("dedup.join")
            return existing, False
        entry = _Pending(transaction, policy, txn_id=txn_id, digest=digest)
        self._inflight[txn_id] = entry
        self._pending.append(entry)
        return entry, True

    def commit(self, transaction: Transaction,
               on_violation: str | None = None,
               timeout: float | None = None,
               txn_id: str | None = None) -> CommitOutcome:
        """Durably commit a transaction; blocks until its batch is synced.

        Concurrent callers are batched automatically: whichever thread
        reaches the batch lock first commits every compatible pending
        transaction in one group.

        With a *timeout* (seconds), waiting for the batch is bounded:
        expiry raises :class:`ConflictDeferralTimeout`.  An entry still in
        the pending queue at expiry is withdrawn (definitely not applied);
        one already claimed by a batch leader may still be applied -- the
        exception message distinguishes the two cases.

        *txn_id* gives the commit a durable identity: if an earlier attempt
        with the same id and body already completed -- even before a crash
        -- the recorded outcome is returned instead of re-applying; if one
        is still running, this call joins its wait.  The same id with a
        *different* body raises :class:`IdempotencyError`.
        """
        self._ensure_open()
        with self.metrics.time("commit"):
            policy = on_violation or self._policy
            joined = False
            if txn_id is not None:
                self._check_txn_id(txn_id)
                with self._pending_lock:
                    admitted, fresh = self._admit(transaction, policy, txn_id)
                if isinstance(admitted, CommitOutcome):
                    return admitted
                entry = admitted
                # A duplicate joining a running attempt must not withdraw
                # the entry on its own timeout -- the original owns it.
                joined = not fresh
            else:
                entry = _Pending(transaction, policy)
                with self._pending_lock:
                    self._pending.append(entry)
            if timeout is None:
                with self._batch_lock:
                    if not entry.done.is_set():
                        self._drain()
                entry.done.wait()
            else:
                deadline = time.monotonic() + timeout
                if self._batch_lock.acquire(timeout=timeout):
                    try:
                        if not entry.done.is_set():
                            self._drain()
                    finally:
                        self._batch_lock.release()
                if not entry.done.wait(max(0.0, deadline - time.monotonic())):
                    if joined:
                        # The original caller owns the entry; a duplicate
                        # must not withdraw it out from under them.
                        self.metrics.increment("commit.deferral_timeouts")
                        raise ConflictDeferralTimeout(
                            f"duplicate commit for txn_id {txn_id!r} timed "
                            f"out after {timeout:g}s while the original "
                            "attempt is still running; retry with the same "
                            "txn_id")
                    self._withdraw(entry, timeout)
        if entry.error is not None:
            raise entry.error
        assert entry.outcome is not None
        return entry.outcome

    def _withdraw(self, entry: _Pending, timeout: float) -> None:
        """Give up on a timed-out pending commit (see :meth:`commit`)."""
        with self._pending_lock:
            withdrawn = not entry.done.is_set() and entry in self._pending
            if withdrawn:
                # Still queued: no leader owns it, withdrawal is exact.
                self._pending.remove(entry)
        if withdrawn:
            self.metrics.increment("commit.deferral_timeouts")
            retry_hint = ("retry with the same txn_id"
                          if entry.txn_id is not None else "safe to retry")
            self._finish(entry, error=ConflictDeferralTimeout(
                f"commit timed out after {timeout:g}s waiting for its "
                f"batch; the transaction was withdrawn and NOT applied "
                f"-- {retry_hint}"))
            return
        # A leader already claimed the entry; give it a short grace period
        # (it is usually mid-fsync), then report the undecided state.
        if not entry.done.wait(min(timeout, 0.05)):
            self.metrics.increment("commit.deferral_timeouts")
            retry_hint = ("retry with the same txn_id to learn the outcome"
                          if entry.txn_id is not None
                          else "re-query before retrying")
            raise ConflictDeferralTimeout(
                f"commit timed out after {timeout:g}s but a batch leader "
                "already claimed the transaction; it may still be applied "
                f"-- {retry_hint}")

    def commit_many(self, transactions: Iterable[Transaction],
                    on_violation: str | None = None,
                    raise_errors: bool = True,
                    txn_ids: Iterable[str | None] | None = None
                    ) -> list[CommitOutcome]:
        """Commit a sequence through the group-commit machinery.

        Deterministic counterpart of N threads calling :meth:`commit`
        (used by tests and benchmarks): transactions are enqueued in order
        and drained into batches of at most ``max_batch``.  *txn_ids*, when
        given, pairs each transaction with an idempotency key (``None``
        entries stay unstamped); recorded duplicates short-circuit to their
        remembered outcome exactly as in :meth:`commit`.
        """
        self._ensure_open()
        transactions = list(transactions)
        policy = on_violation or self._policy
        ids: list[str | None] = (list(txn_ids) if txn_ids is not None
                                 else [None] * len(transactions))
        if len(ids) != len(transactions):
            raise ValueError("txn_ids must pair 1:1 with transactions")
        for txn_id in ids:
            if txn_id is not None:
                self._check_txn_id(txn_id)
        # Each slot is a _Pending to wait on or an already-known outcome.
        slots: list[_Pending | CommitOutcome] = []
        mine: list[_Pending] = []  # entries this call enqueued
        with self._pending_lock:
            try:
                for transaction, txn_id in zip(transactions, ids):
                    if txn_id is None:
                        entry = _Pending(transaction, policy)
                        self._pending.append(entry)
                        mine.append(entry)
                        slots.append(entry)
                        continue
                    slot, is_fresh = self._admit(transaction, policy, txn_id)
                    if is_fresh:
                        mine.append(slot)
                    slots.append(slot)
            except IdempotencyError:
                # Unwind this call's own registrations; _admit already
                # appended them to the queue and the in-flight map.
                for entry in mine:
                    if entry in self._pending:
                        self._pending.remove(entry)
                    if entry.txn_id is not None:
                        self._inflight.pop(entry.txn_id, None)
                raise
        with self._batch_lock:
            self._drain()
        outcomes: list[CommitOutcome] = []
        for slot in slots:
            if isinstance(slot, CommitOutcome):
                outcomes.append(slot)
                continue
            slot.done.wait()
            if slot.error is not None and raise_errors:
                raise slot.error
            if slot.outcome is not None:
                outcomes.append(slot.outcome)
        return outcomes

    # -- two-phase commit (participant side) -----------------------------------

    def prepare(self, transaction: Transaction, txn_id: str) -> dict:
        """Phase 1 of a cross-shard commit: validate, persist a vote.

        Runs this shard's own admission checks (base-only events, the
        integrity check under the ``reject`` policy) and, when they pass,
        fsyncs a ``prepared`` WAL line and locks the transaction's fact
        keys until :meth:`decide` resolves it.  Returns a vote dict:

        - ``{"vote": "commit", "prepared": True}`` -- durable yes-vote;
        - ``{"vote": "abort", "decided": True, "outcome": ...}`` -- a
          unilateral, durable no (integrity violation), or a replay of an
          already-decided outcome (idempotent retry).

        A no-vote needs no decision round-trip: the participant may abort
        unilaterally before voting yes, and the durable rejection record
        makes the verdict survive a crash.  Conflicting in-flight state
        raises the retryable :class:`TxnConflictError`.
        """
        self._ensure_open()
        self._check_txn_id(txn_id)
        digest = transaction_digest(transaction)
        with self.metrics.time("prepare"), self._rwlock.write(), \
                self._interp_lock:
            existing = self._prepared.get(txn_id)
            if existing is not None:
                if existing.digest != digest:
                    raise IdempotencyError(
                        f"txn_id {txn_id!r} is prepared for a different "
                        "transaction body")
                return {"vote": "commit", "prepared": True}
            record = self._store.txns.get(txn_id)
            if record is not None:
                if record.digest != digest:
                    raise IdempotencyError(
                        f"txn_id {txn_id!r} was already used for a "
                        "different transaction body")
                if not record.outcome.get("aborted"):
                    # Definitive outcome (applied or rejected): replay it.
                    return {"vote": ("commit" if record.outcome.get("applied")
                                     else "abort"),
                            "decided": True, "outcome": record.outcome}
                # A past *abort decision* is provisional from the client's
                # point of view (a transient failure elsewhere aborted the
                # round, not this shard's own verdict): allow a fresh vote.
            transaction.check_base_only(self.db)
            keys = frozenset((e.predicate, e.args) for e in transaction)
            for other_id, other in self._prepared.items():
                if not keys.isdisjoint(other.keys):
                    self.metrics.increment("twopc.conflicts")
                    raise TxnConflictError(
                        f"prepare of {txn_id!r} conflicts with in-flight "
                        f"transaction {other_id!r}; retry after it resolves")
            check: ICCheckResult | None = None
            if self.db.constraints:
                try:
                    check = self._maintainer.check(transaction)
                except StateError:
                    check = None  # inconsistent old state: commit unchecked
            if check is not None and not check.ok:
                outcome = CommitOutcome(False, transaction, check=check)
                self._store.log_txn_outcome(txn_id, digest, applied=False,
                                            sync=True)
                self._store.txns.put(txn_id, digest, outcome.to_dict())
                self.metrics.increment("twopc.vetoed")
                return {"vote": "abort", "decided": True,
                        "outcome": outcome.to_dict()}
            self._store.log_prepare(txn_id, digest, transaction, sync=True)
            self._prepared[txn_id] = _PreparedTxn(transaction, digest, keys)
            self.metrics.increment("twopc.prepared")
            faults.failpoint(FP_PREPARE_WRITTEN, txn_id=txn_id)
            return {"vote": "commit", "prepared": True}

    def decide(self, txn_id: str, decision: str) -> dict:
        """Phase 2 of a cross-shard commit: apply or abort a prepared vote.

        Idempotent: a decision for an already-resolved transaction replays
        the recorded outcome (the dropped-ack case).  An ``abort`` for an
        unknown transaction is a no-op success -- presumed abort: the vote
        never became durable, so there is nothing to undo.  A ``commit``
        for an unknown transaction raises :class:`TxnStateError` (the
        coordinator counted a vote this shard does not hold -- that is
        lost durability, never something to paper over).
        """
        self._ensure_open()
        if decision not in ("commit", "abort"):
            raise TxnStateError(f"unknown 2PC decision: {decision!r}")
        self._check_txn_id(txn_id)
        with self.metrics.time("decide"), self._rwlock.write(), \
                self._interp_lock:
            prepared = self._prepared.get(txn_id)
            if prepared is None:
                record = self._store.txns.get(txn_id)
                if record is not None:
                    applied = bool(record.outcome.get("applied"))
                    if applied != (decision == "commit"):
                        raise TxnStateError(
                            f"decision {decision!r} for txn {txn_id!r} "
                            f"contradicts its recorded outcome "
                            f"(applied={applied})")
                    return {"resolved": True, "decision": decision,
                            "outcome": record.outcome}
                if decision == "abort":
                    return {"resolved": True, "decision": "abort",
                            "outcome": {"applied": False, "effective": [],
                                        "aborted": True}}
                raise TxnStateError(
                    f"commit decision for txn {txn_id!r}, but this shard "
                    "holds no prepared vote or recorded outcome for it")
            if decision == "commit":
                # Stage the induced deltas before the facts move, then let
                # the maintainer fold them in (counting applies counted
                # deltas; advance patches warm extensions; invalidate and
                # any staging failure reset).
                try:
                    staged_result = self._maintainer.interpret(
                        prepared.transaction)
                except DatalogError:
                    staged_result = None
                feed_before = self._feed_before_snapshot(staged_result)
                effective = self._store.commit(
                    prepared.transaction, sync=True,
                    txn=(txn_id, prepared.digest))
                outcome = CommitOutcome(True, prepared.transaction,
                                        effective).to_dict()
                if staged_result is not None:
                    self._maintainer.advance(staged_result)
                else:
                    self._maintainer.reset()
                self.metrics.increment("twopc.committed")
                self._feed_publish_delta(txn_id=txn_id, result=staged_result,
                                         before=feed_before)
            else:
                self._store.log_txn_outcome(txn_id, prepared.digest,
                                            applied=False, sync=True,
                                            status="aborted")
                outcome = {"applied": False, "effective": [],
                           "aborted": True}
                self.metrics.increment("twopc.aborted")
            del self._prepared[txn_id]
            self._store.txns.put(txn_id, prepared.digest, outcome)
            faults.failpoint(FP_DECIDE_PRE_ACK, txn_id=txn_id,
                             decision=decision)
            return {"resolved": True, "decision": decision,
                    "outcome": outcome}

    # -- group commit internals ------------------------------------------------

    def _finish(self, entry: _Pending, outcome: CommitOutcome | None = None,
                error: BaseException | None = None) -> None:
        """Record and acknowledge one entry -- the only path to ``finish``.

        A txn-stamped outcome enters the dedup table *before* the entry
        leaves the in-flight map, so a concurrent duplicate always finds at
        least one of the two.  Errors are not recorded: they are the
        retryable case.
        """
        if entry.txn_id is not None:
            if outcome is not None:
                self._store.txns.put(entry.txn_id, entry.digest,
                                     outcome.to_dict())
                self.metrics.increment("dedup.record")
            with self._pending_lock:
                if self._inflight.get(entry.txn_id) is entry:
                    del self._inflight[entry.txn_id]
        entry.finish(outcome=outcome, error=error)

    def _drain(self) -> None:
        """Leader loop: drain the pending queue batch by batch."""
        while True:
            with self._pending_lock:
                queue, self._pending = self._pending, []
            if not queue:
                return
            batch: list[_Pending] = []
            try:
                while queue:
                    batch, queue = self._take_batch(queue)
                    self._commit_batch(batch)
            except BaseException as error:
                # Storage-level failure: fail every commit this leader owns
                # rather than leaving waiters blocked forever.
                for entry in batch + queue:
                    if not entry.done.is_set():
                        self._finish(entry, error=error)
                raise

    def _take_batch(self, queue: list[_Pending]
                    ) -> tuple[list[_Pending], list[_Pending]]:
        """Pack a prefix of *queue* with pairwise-disjoint fact sets."""
        batch = [queue[0]]
        touched = set(queue[0].fact_keys())
        deferred: list[_Pending] = []
        for entry in queue[1:]:
            keys = entry.fact_keys()
            if len(batch) < self._max_batch and touched.isdisjoint(keys):
                batch.append(entry)
                touched |= keys
            else:
                if not touched.isdisjoint(keys):
                    self.metrics.increment("commit.conflicts_deferred")
                deferred.append(entry)
        return batch, deferred

    def _commit_batch(self, batch: list[_Pending]) -> None:
        self.metrics.increment("commit.batches")
        with obs.span("engine.commit_batch") as span:
            lock_start = time.perf_counter()
            with self._rwlock.write(), self._interp_lock:
                if obs.enabled():
                    span.add("batch_size", len(batch))
                    span.add("lock_wait_seconds",
                             time.perf_counter() - lock_start)
                self._commit_batch_locked(batch, span)

    def _commit_batch_locked(self, batch: list[_Pending], span) -> None:
        db = self.db
        # Fact keys promised to in-doubt cross-shard transactions: a plain
        # commit touching one must wait (retryable) until the vote resolves,
        # or a commit decision could find its rows already changed.
        locked = frozenset(
            key for held in self._prepared.values() for key in held.keys)
        # Per-entry validation: one bad transaction must not sink its
        # batch mates.
        valid: list[_Pending] = []
        for entry in batch:
            try:
                entry.transaction.check_base_only(db)
            except TransactionError as error:
                self._finish(entry, error=error)
                continue
            if locked and not locked.isdisjoint(entry.fact_keys()):
                self.metrics.increment("twopc.conflicts")
                self._finish(entry, error=TxnConflictError(
                    "commit touches fact keys locked by an in-flight "
                    "cross-shard transaction; retry after it resolves"))
                continue
            valid.append(entry)
        if not valid:
            return
        if self._group_commit(valid):
            span.set(path="group")
            return
        span.set(path="serial")
        # Slow path: a violation (or a non-reject policy) somewhere in
        # the batch -- process sequentially through the shared checked
        # path, still paying one fsync for the whole batch.  Entries
        # whose events (or txn outcome markers) reached the log are
        # acknowledged only after sync_log(): waking a waiter before the
        # fsync would let the server confirm a commit -- or remember a
        # rejection -- a crash could still lose.  If sync_log raises,
        # _drain fails every unfinished entry.
        to_ack: list[tuple[_Pending, CommitOutcome]] = []
        applied_any = False
        for entry in valid:
            try:
                outcome = checked_commit(
                    self._processor, entry.transaction,
                    lambda t, e=entry: self._store.commit(
                        t, sync=False,
                        txn=((e.txn_id, e.digest)
                             if e.txn_id is not None else None)),
                    on_violation=entry.policy)
            except DatalogError as error:
                self._finish(entry, error=error)
                continue
            applied_any = applied_any or outcome.applied
            if (outcome.applied and outcome.check is None
                    and entry.policy != "ignore" and db.constraints):
                # checked_commit skipped the check (inconsistent old state).
                self._note_unchecked(1)
            if outcome.applied:
                if outcome.effective.events or entry.txn_id is not None:
                    to_ack.append((entry, outcome))
                else:
                    self._finish(entry, outcome=outcome)
            elif entry.txn_id is not None:
                # A rejection never reaches the log through commit(); write
                # a marker so a post-crash retry replays the verdict
                # instead of re-checking against a moved state.
                self._store.log_txn_outcome(entry.txn_id, entry.digest,
                                            applied=False)
                to_ack.append((entry, outcome))
            else:
                self._finish(entry, outcome=outcome)
        if applied_any:
            # checked_commit invalidated the interpreter caches per entry;
            # stateful maintainers (counting) must drop their standing
            # state too, since facts moved without delta maintenance.
            self._maintainer.reset()
            # The feed has no per-commit deltas for a serial batch; tell
            # subscribers to re-pull rather than guess.
            self._feed_resync("slow-path")
        if to_ack:
            self._sync_log()
            faults.failpoint(FP_PRE_ACK)
        for entry, outcome in to_ack:
            self._finish(entry, outcome=outcome)

    def _sync_log(self) -> None:
        """One WAL fsync, traced and counted."""
        with obs.span("engine.fsync"):
            self._store.sync_log()
        self.metrics.increment("commit.wal_syncs")

    def _group_commit(self, batch: list[_Pending]) -> bool:
        """Fast path: shared-state checks, one fsync.  False -> slow path.

        Reject semantics are enforced per member: every transaction must
        pass its *own* integrity check against the batch-start state (so a
        transaction each serial order would reject cannot hide behind its
        batch mates) and the merged batch must pass as a whole (so the
        post-batch state is consistent).  All checks hit the same old
        state, so the upward interpreter's memoised materialisations are
        reused across the whole batch -- that, plus the single fsync, is
        the amortisation group commit pays for.

        Derived-state maintenance is delegated to the configured
        :class:`StateMaintainer`: in ``advance`` mode the merged check
        runs with *full* predicate coverage and after the batch is
        applied its induced events patch the memoised derived extensions
        in place (:meth:`UpdateProcessor.advance_state_caches`); in
        ``counting`` mode the check itself *is* the delta-rule
        evaluation, and the staged derivation counts are folded in after
        the batch is applied -- the view maintenance the paper reads out
        of the event rules, applied to our own serving cache.  Unchecked
        commits (inconsistent old state) and any advance failure fall
        back to a full maintainer reset.
        """
        db = self.db
        if any(entry.policy != "reject" for entry in batch):
            return False
        faults.failpoint(FP_PRE_BATCH_MERGE, batch_size=len(batch))
        try:
            merged = Transaction(
                event for entry in batch for event in entry.transaction)
        except TransactionError:
            # Contradictory events across entries (insert vs delete of the
            # same fact) -- cannot happen for disjoint batches, but keep the
            # fast path honest.
            return False
        maintainer = self._maintainer
        checks: dict[int, ICCheckResult] = {}
        advance_result = None
        if db.constraints:
            try:
                merged_verdict, advance_result = maintainer.check_full(merged)
                if not merged_verdict.ok:
                    return False
                if len(batch) == 1:
                    checks[0] = merged_verdict
                else:
                    for index, entry in enumerate(batch):
                        verdict = maintainer.check(entry.transaction)
                        if not verdict.ok:
                            return False
                        checks[index] = verdict
            except StateError:
                # Inconsistent old state: commit unchecked (the paper's
                # methods need a consistent Do), but say so loudly.
                checks = {}
                advance_result = None
                self._note_unchecked(len(batch))
        else:
            # No constraints, so no check ran -- a maintainer with warm
            # state still computes the batch's induced events so its
            # caches keep moving instead of resetting.
            try:
                advance_result = maintainer.interpret(merged)
            except DatalogError:
                advance_result = None
        faults.failpoint(FP_POST_CHECK_PRE_ACK, batch_size=len(batch))
        # Diff-fallback feed sourcing needs the pre-apply extents (the
        # maintainer produced no delta -- invalidate mode, unchecked
        # commits, cold caches); snapshot before any fact moves.
        feed_before = self._feed_before_snapshot(advance_result)
        outcomes: list[tuple[_Pending, CommitOutcome]] = []
        synced = False
        for index, entry in enumerate(batch):
            effective = self._store.commit(
                entry.transaction, sync=False,
                txn=((entry.txn_id, entry.digest)
                     if entry.txn_id is not None else None))
            # A txn-stamped commit writes its identity line even when the
            # effective event set is empty -- that line must be fsynced
            # before the ack, like any other.
            synced = synced or bool(effective.events) \
                or entry.txn_id is not None
            outcomes.append((entry, CommitOutcome(
                True, entry.transaction, effective, checks.get(index))))
        # Cache maintenance before the fsync: it depends only on the
        # in-memory state, and doing it here keeps cache and database
        # consistent even when sync_log fails below.
        if advance_result is not None:
            faults.failpoint(FP_MID_CACHE_ADVANCE)
            maintainer.advance(advance_result)
        else:
            maintainer.reset()
        if synced:
            self._sync_log()
        # Publish strictly after the fsync: a frame for a commit a crash
        # could still lose would be a phantom.  A crash here (or inside
        # the publish failpoint) leaves the commit durable with its frame
        # unsent -- subscribers resync, they never see duplicates.
        self._feed_publish_delta(
            txn_id=(batch[0].txn_id if len(batch) == 1 else None),
            result=advance_result, before=feed_before)
        faults.failpoint(FP_PRE_ACK)
        # Acknowledge strictly after the fsync: a waiter woken earlier
        # could see a successful commit a crash then loses.  If sync_log
        # raised above, _drain fails every unfinished entry instead.
        for entry, outcome in outcomes:
            self._finish(entry, outcome=outcome)
        self.metrics.increment("commit.group_committed", len(batch))
        return True

    def _note_unchecked(self, n_transactions: int) -> None:
        """Count and log transactions committed without an integrity check."""
        self.metrics.increment("commit.unchecked", n_transactions)
        try:
            violated = ", ".join(sorted(
                self._processor.inconsistency_witnesses())) or "unknown"
        except DatalogError:
            violated = "unknown"
        logger.warning(
            "committing %d transaction(s) UNCHECKED: the current state "
            "already violates constraint(s) %s; integrity checking "
            "requires a consistent old state", n_transactions, violated)

    # -- maintenance -----------------------------------------------------------

    def checkpoint(self) -> None:
        """Fold the WAL into a fresh snapshot (write-locked)."""
        self._ensure_open()
        with self.metrics.time("checkpoint"), self._rwlock.write(), \
                self._interp_lock:
            self._store.checkpoint()
            # Snapshot/recovery boundaries rebuild from disk: conservative
            # full maintainer reset rather than trusting the warm state.
            self._maintainer.reset()
            self._feed_resync("checkpoint")

    def close(self, checkpoint: bool = True) -> None:
        """Refuse further requests; optionally checkpoint the WAL."""
        if self._closed:
            return
        with self._rwlock.write():
            self._closed = True
            if checkpoint:
                self._store.checkpoint()
