"""Synthetic workload generators for the benchmark harness.

The paper has no empirical evaluation, so the SYN* experiments
(EXPERIMENTS.md) define one: these generators produce databases,
rule shapes and transactions that exercise every code path the framework
specifies, deterministically from a seed.
"""

from repro.workloads.generators import (
    chain_join_views,
    constraint_network,
    employment_database,
    random_database,
    random_transaction,
    reachability_database,
    view_tower,
)

__all__ = [
    "chain_join_views",
    "constraint_network",
    "employment_database",
    "random_database",
    "random_transaction",
    "reachability_database",
    "view_tower",
]
