"""Deterministic generators of databases, rules and transactions.

Every generator takes a ``seed`` and uses its own :class:`random.Random`, so
benchmark runs are reproducible and property tests can shrink.
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.datalog.database import DeductiveDatabase
from repro.datalog.parser import parse_rule
from repro.datalog.rules import Atom, Literal, Rule
from repro.datalog.terms import Constant, Variable
from repro.events.events import Event, Transaction, delete, insert


def employment_database(n_people: int = 100, employed_ratio: float = 0.6,
                        benefit_ratio: float = 1.0, seed: int = 0
                        ) -> DeductiveDatabase:
    """The paper's running example (Examples 5.1-5.3) at scale.

    ``La(x)``: labour age; ``Works(x)``: employed; ``U_benefit(x)``:
    receives benefit; ``Unemp(x) <- La(x) & not Works(x)``;
    ``Ic1 <- Unemp(x) & not U_benefit(x)``.  With ``benefit_ratio < 1`` some
    unemployed people lack a benefit and the database starts inconsistent.
    """
    rng = random.Random(seed)
    db = DeductiveDatabase()
    db.declare_base("La", 1)
    db.declare_base("Works", 1)
    db.declare_base("U_benefit", 1)
    db.add_rule(parse_rule("Unemp(x) <- La(x) & not Works(x)."))
    db.add_constraint(parse_rule("Ic1(x) <- Unemp(x) & not U_benefit(x)."))
    for index in range(n_people):
        person = f"P{index}"
        db.add_fact("La", person)
        if rng.random() < employed_ratio:
            db.add_fact("Works", person)
        elif rng.random() < benefit_ratio:
            db.add_fact("U_benefit", person)
    return db


def random_database(n_facts: int = 500, domain_size: int = 50,
                    n_base: int = 4, arity: int = 2, seed: int = 0
                    ) -> DeductiveDatabase:
    """Base relations ``B1..Bn`` filled with random tuples (no rules yet)."""
    rng = random.Random(seed)
    db = DeductiveDatabase()
    names = [f"B{i + 1}" for i in range(n_base)]
    for name in names:
        db.declare_base(name, arity)
    for _ in range(n_facts):
        name = rng.choice(names)
        row = tuple(f"C{rng.randrange(domain_size)}" for _ in range(arity))
        db.add_fact(name, *row)
    return db


def chain_join_views(db: DeductiveDatabase, n_views: int = 2,
                     negated_last: bool = False) -> list[str]:
    """Add chain-join views ``Vk(x,y) <- B1(x,z) & B2(z,y) ...`` to *db*.

    ``V1(x,y) <- B1(x,z) & B2(z,y)``, ``V2(x,y) <- V1(x,z) & B3(z,y)``, ...
    With ``negated_last`` the final view adds a negative condition, giving
    the transition rules their 2^k shape with both event polarities.
    Returns the view names, bottom-up.
    """
    base = sorted(n for n in db.schema.base if n.startswith("B"))
    if len(base) < 2:
        raise ValueError("chain_join_views needs at least two base relations")
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    views: list[str] = []
    previous = base[0]
    for index in range(n_views):
        name = f"V{index + 1}"
        other = base[(index + 1) % len(base)]
        body = [
            Literal(Atom(previous, (x, z)), True),
            Literal(Atom(other, (z, y)), True),
        ]
        if negated_last and index == n_views - 1:
            guard = base[(index + 2) % len(base)]
            body.append(Literal(Atom(guard, (x, y)), False))
        db.add_rule(Rule(Atom(name, (x, y)), tuple(body)))
        views.append(name)
        previous = name
    return views


def view_tower(height: int = 5, width: int = 200, domain_size: int = 60,
               seed: int = 0) -> tuple[DeductiveDatabase, list[str]]:
    """A tower of unary views ``Ti(x) <- Ti-1(x) & Gi(x)`` over ``T0`` base.

    Every level filters the previous one by a random guard relation; the
    tower depth is what the SYN3 benchmark sweeps.
    """
    rng = random.Random(seed)
    db = DeductiveDatabase()
    db.declare_base("T0", 1)
    constants = [f"C{i}" for i in range(domain_size)]
    for _ in range(width):
        db.add_fact("T0", rng.choice(constants))
    views: list[str] = []
    for level in range(1, height + 1):
        guard = f"G{level}"
        db.declare_base(guard, 1)
        for constant in constants:
            if rng.random() < 0.8:
                db.add_fact(guard, constant)
        db.add_rule(parse_rule(f"T{level}(x) <- T{level - 1}(x) & {guard}(x)."))
        views.append(f"T{level}")
    return db, views


def constraint_network(n_constraints: int = 5, n_facts: int = 300,
                       domain_size: int = 40, seed: int = 0
                       ) -> DeductiveDatabase:
    """Relations ``R1..Rn+1`` with inclusion constraints between neighbours.

    ``IcK <- RK(x) & not RK+1(x)``: every element of ``RK`` must be in
    ``RK+1``.  Facts are generated so the database starts consistent; the
    SYN2 benchmark then deletes ``RK+1`` facts to trigger violations.
    """
    rng = random.Random(seed)
    db = DeductiveDatabase()
    names = [f"R{i + 1}" for i in range(n_constraints + 1)]
    for name in names:
        db.declare_base(name, 1)
    for index in range(n_constraints):
        db.add_constraint(parse_rule(
            f"Ic{index + 1} <- {names[index]}(x) & not {names[index + 1]}(x)."
        ))
    constants = [f"C{i}" for i in range(domain_size)]
    chosen = rng.sample(constants, k=min(len(constants), max(1, n_facts // (n_constraints + 1))))
    # Build inclusion chains R1 ⊆ R2 ⊆ ... so the start state is consistent.
    for constant in chosen:
        depth = rng.randrange(n_constraints + 1)
        for name in names[depth:]:
            db.add_fact(name, constant)
    return db


def reachability_database(n_nodes: int = 30, n_edges: int = 60, seed: int = 0
                          ) -> DeductiveDatabase:
    """A recursive workload: ``Path`` over a random ``Edge`` relation.

    Exercises the recursive-SCC fallback of the hybrid upward strategy.
    """
    rng = random.Random(seed)
    db = DeductiveDatabase()
    db.declare_base("Edge", 2)
    db.add_rule(parse_rule("Path(x,y) <- Edge(x,y)."))
    db.add_rule(parse_rule("Path(x,y) <- Edge(x,z) & Path(z,y)."))
    nodes = [f"N{i}" for i in range(n_nodes)]
    for _ in range(n_edges):
        source, target = rng.choice(nodes), rng.choice(nodes)
        if source != target:
            db.add_fact("Edge", source, target)
    return db


def random_transaction(db: DeductiveDatabase, n_events: int = 4,
                       insert_ratio: float = 0.5, seed: int = 0,
                       predicates: Iterable[str] | None = None) -> Transaction:
    """A well-formed random transaction of effective base events.

    Deletions pick stored facts; insertions invent fresh tuples over the
    active domain.  Events never contradict each other and are effective
    (no no-ops), so transactions exercise the interesting code paths.
    """
    rng = random.Random(seed)
    base = sorted(predicates if predicates is not None
                  else db.base_predicates_with_facts())
    base = [p for p in base if db.schema.is_base(p)]
    if not base:
        raise ValueError("database has no base facts to build a transaction from")
    domain = sorted(db.active_domain(), key=str)
    events: dict[tuple[str, tuple], Event] = {}
    attempts = 0
    while len(events) < n_events and attempts < n_events * 50:
        attempts += 1
        predicate = rng.choice(base)
        arity = db.schema.arity(predicate)
        if rng.random() < insert_ratio:
            row = tuple(Constant(rng.choice(domain).value) for _ in range(arity))
            if db.has_fact(predicate, *row):
                continue
            candidate = insert(predicate, *row)
        else:
            rows = sorted(db.facts_of(predicate), key=str)
            if not rows:
                continue
            row = rng.choice(rows)
            candidate = delete(predicate, *row)
        key = (predicate, candidate.args)
        if key in events:
            continue
        events[key] = candidate
    return Transaction(events.values())
