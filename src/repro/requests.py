"""Typed update requests -- one hierarchy for CLI, wire protocol and library.

Historically the system had three parallel request representations: event
literals built by :mod:`repro.events.requests`, raw dict payloads decoded
by :mod:`repro.server.protocol`, and argparse namespaces in
:mod:`repro.cli`.  This module collapses them: every operation is an
:class:`UpdateRequest` subclass that

- serialises itself with :meth:`~UpdateRequest.to_wire` /
  :meth:`~UpdateRequest.from_wire` (the protocol's ``{"op", "params"}``
  shape, with legacy payload variants still accepted),
- executes against a server engine with :meth:`~UpdateRequest.execute`
  (returning the JSON-ready result dict the wire carries), and
- runs locally against an :class:`~repro.core.processor.UpdateProcessor`
  with :meth:`~UpdateRequest.run` (returning rich result objects).

The CLI builds typed requests from flags, the protocol dispatches by
deserialising into them, and embedders construct them directly -- one
validation path, so wire semantics cannot drift from library semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, ClassVar

from repro.datalog.errors import DatalogError
from repro.datalog.rules import Literal
from repro.events.events import Transaction, parse_transaction
from repro.events.requests import parse_request, request_text
from repro.interpretations.maintainers import CacheMode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.processor import UpdateProcessor
    from repro.server.engine import DatabaseEngine


class WireFormatError(DatalogError):
    """A request payload that does not deserialise into a typed request.

    .. deprecated:: cache-mode strings
       The bare strings ``"advance"`` / ``"invalidate"`` (and
       ``"counting"``) remain accepted on the wire, on the CLI and in
       engine constructors wherever a cache mode is expected, but they
       are a legacy spelling: new code should pass
       :class:`~repro.interpretations.maintainers.CacheMode` members
       (``stats``/``health`` payloads always carry the string value).
    """


#: Registry of concrete request types by wire op (filled by subclassing).
REQUEST_TYPES: dict[str, type["UpdateRequest"]] = {}

_POLICIES = ("reject", "maintain", "ignore")


@dataclass
class UpdateRequest:
    """Base class of every typed request (see module docstring)."""

    #: The wire operation name; registered automatically on subclassing.
    op: ClassVar[str] = ""

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        if cls.op:
            REQUEST_TYPES[cls.op] = cls

    # -- wire form -------------------------------------------------------------

    def params(self) -> dict:
        """The JSON-ready parameter payload (no ``op``)."""
        return {}

    def to_wire(self) -> dict:
        """The protocol payload: ``{"op": ..., "params": {...}}``."""
        payload: dict = {"op": self.op}
        params = self.params()
        if params:
            payload["params"] = params
        return payload

    @classmethod
    def from_params(cls, params: dict) -> "UpdateRequest":
        """Build a request of this type from a parameter payload."""
        return cls()

    @staticmethod
    def of(op: str, params: dict | None = None) -> "UpdateRequest":
        """Deserialise one operation; the protocol dispatcher's entry point."""
        request_type = REQUEST_TYPES.get(op)
        if request_type is None:
            raise WireFormatError(
                f"unknown op {op!r} (known: {', '.join(sorted(REQUEST_TYPES))})")
        return request_type.from_params(params or {})

    @staticmethod
    def from_wire(payload: dict) -> "UpdateRequest":
        """Deserialise a full ``{"op", "params"}`` payload."""
        op = payload.get("op")
        if not isinstance(op, str) or not op:
            raise WireFormatError("payload needs a non-empty string 'op'")
        params = payload.get("params", {})
        if not isinstance(params, dict):
            raise WireFormatError("payload 'params' must be an object")
        return UpdateRequest.of(op, params)

    # -- execution -------------------------------------------------------------

    def execute(self, engine: "DatabaseEngine") -> dict:
        """Execute against a serving engine; returns the wire result dict."""
        raise NotImplementedError

    def run(self, processor: "UpdateProcessor"):
        """Run locally against an update processor; returns result objects."""
        raise DatalogError(
            f"'{self.op}' is only meaningful against a server engine")


# -- parameter coercion helpers ------------------------------------------------


def _wire_string(params: dict, name: str) -> str:
    value = params.get(name)
    if not isinstance(value, str) or not value.strip():
        raise WireFormatError(f"'{name}' must be a non-empty string")
    return value


def _wire_transaction(params: dict) -> Transaction:
    return parse_transaction(_wire_string(params, "transaction"))


def _coerce_transaction(transaction: Transaction | str) -> Transaction:
    if isinstance(transaction, str):
        return parse_transaction(transaction)
    return transaction


def _coerce_requests(requests) -> tuple[Literal, ...]:
    if isinstance(requests, (Literal, str)):
        requests = [requests]
    coerced: list[Literal] = []
    for item in requests:
        if isinstance(item, str):
            coerced.extend(parse_request(piece)
                           for piece in item.split(";") if piece.strip())
        else:
            coerced.append(item)
    return tuple(coerced)


# -- concrete requests ---------------------------------------------------------


@dataclass
class HelloRequest(UpdateRequest):
    """Version/identity handshake."""

    op: ClassVar[str] = "hello"

    def execute(self, engine: "DatabaseEngine") -> dict:
        from repro.server.protocol import PROTOCOL_VERSION, known_ops

        return {"server": "repro", "version": PROTOCOL_VERSION,
                "ops": known_ops()}


@dataclass
class PingRequest(UpdateRequest):
    """Liveness probe."""

    op: ClassVar[str] = "ping"

    def execute(self, engine: "DatabaseEngine") -> dict:
        return {"pong": True}


@dataclass
class QueryRequest(UpdateRequest):
    """Evaluate a goal in the current state."""

    op: ClassVar[str] = "query"
    goal: str = ""

    def params(self) -> dict:
        return {"goal": self.goal}

    @classmethod
    def from_params(cls, params: dict) -> "QueryRequest":
        return cls(goal=_wire_string(params, "goal"))

    def execute(self, engine: "DatabaseEngine") -> dict:
        answers = engine.query(self.goal)
        return {"answers": [list(row) for row in answers]}

    def run(self, processor: "UpdateProcessor"):
        return processor.db.query(self.goal)


@dataclass
class UpwardRequest(UpdateRequest):
    """Induced derived events of a transaction (Section 4 upward)."""

    op: ClassVar[str] = "upward"
    transaction: Transaction = field(default_factory=Transaction)
    predicates: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        self.transaction = _coerce_transaction(self.transaction)

    def params(self) -> dict:
        payload: dict = {"transaction": self.transaction.to_text()}
        if self.predicates is not None:
            payload["predicates"] = list(self.predicates)
        return payload

    @classmethod
    def from_params(cls, params: dict) -> "UpwardRequest":
        predicates = params.get("predicates")
        if predicates is not None and (
                not isinstance(predicates, list)
                or not all(isinstance(p, str) for p in predicates)):
            raise WireFormatError("'predicates' must be a list of strings")
        return cls(transaction=_wire_transaction(params),
                   predicates=tuple(predicates) if predicates is not None
                   else None)

    def execute(self, engine: "DatabaseEngine") -> dict:
        return engine.upward(self.transaction, self.predicates).to_dict()

    def run(self, processor: "UpdateProcessor"):
        return processor.upward(self.transaction, self.predicates)


@dataclass
class CheckRequest(UpdateRequest):
    """Integrity constraint checking (5.1.1) without applying."""

    op: ClassVar[str] = "check"
    transaction: Transaction = field(default_factory=Transaction)

    def __post_init__(self) -> None:
        self.transaction = _coerce_transaction(self.transaction)

    def params(self) -> dict:
        return {"transaction": self.transaction.to_text()}

    @classmethod
    def from_params(cls, params: dict) -> "CheckRequest":
        return cls(transaction=_wire_transaction(params))

    def execute(self, engine: "DatabaseEngine") -> dict:
        return engine.check(self.transaction).to_dict()

    def run(self, processor: "UpdateProcessor"):
        return processor.check(self.transaction)


@dataclass
class MonitorRequest(UpdateRequest):
    """Condition monitoring (5.1.2)."""

    op: ClassVar[str] = "monitor"
    transaction: Transaction = field(default_factory=Transaction)
    conditions: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        self.transaction = _coerce_transaction(self.transaction)
        self.conditions = tuple(self.conditions)

    def params(self) -> dict:
        return {"transaction": self.transaction.to_text(),
                "conditions": list(self.conditions)}

    @classmethod
    def from_params(cls, params: dict) -> "MonitorRequest":
        conditions = params.get("conditions")
        if (not isinstance(conditions, list) or not conditions
                or not all(isinstance(c, str) for c in conditions)):
            raise WireFormatError(
                "'conditions' must be a non-empty list of strings")
        return cls(transaction=_wire_transaction(params),
                   conditions=tuple(conditions))

    def execute(self, engine: "DatabaseEngine") -> dict:
        return engine.monitor(self.transaction, self.conditions).to_dict()

    def run(self, processor: "UpdateProcessor"):
        return processor.monitor(self.transaction, self.conditions)


@dataclass
class DownwardRequest(UpdateRequest):
    """View updating / the downward interpretation (5.2)."""

    op: ClassVar[str] = "downward"
    requests: tuple[Literal, ...] = ()

    def __post_init__(self) -> None:
        self.requests = _coerce_requests(self.requests)

    def params(self) -> dict:
        return {"requests": [request_text(l) for l in self.requests]}

    @classmethod
    def from_params(cls, params: dict) -> "DownwardRequest":
        raw = params.get("requests")
        if isinstance(raw, str):  # legacy ';'-joined payload
            raw = [piece for piece in raw.split(";") if piece.strip()]
        if (not isinstance(raw, list) or not raw
                or not all(isinstance(r, str) for r in raw)):
            raise WireFormatError(
                "'requests' must be a non-empty list of strings "
                "(e.g. [\"ins P(A)\", \"not del Q(B)\"])")
        return cls(requests=tuple(parse_request(piece) for piece in raw))

    def execute(self, engine: "DatabaseEngine") -> dict:
        return engine.downward(list(self.requests)).to_dict()

    def run(self, processor: "UpdateProcessor"):
        return processor.downward(list(self.requests))


@dataclass
class RepairRequest(UpdateRequest):
    """Candidate repairs of an inconsistent database (5.2.3)."""

    op: ClassVar[str] = "repair"
    verify: bool = False

    def params(self) -> dict:
        return {"verify": self.verify} if self.verify else {}

    @classmethod
    def from_params(cls, params: dict) -> "RepairRequest":
        return cls(verify=bool(params.get("verify", False)))

    def execute(self, engine: "DatabaseEngine") -> dict:
        return engine.repair(verify=self.verify).to_dict()

    def run(self, processor: "UpdateProcessor"):
        return processor.repair(verify=self.verify)


@dataclass
class CommitRequest(UpdateRequest):
    """Checked, durable, group-committed transaction execution."""

    op: ClassVar[str] = "commit"
    transaction: Transaction = field(default_factory=Transaction)
    on_violation: str | None = None
    #: Bound (seconds) on waiting for the commit's batch; expiry surfaces
    #: as a ``conflict-timeout`` wire error.
    timeout: float | None = None
    #: Idempotency key: retries carrying the same id get the recorded
    #: outcome of the first applied attempt instead of re-applying.
    txn_id: str | None = None

    def __post_init__(self) -> None:
        self.transaction = _coerce_transaction(self.transaction)

    def params(self) -> dict:
        payload: dict = {"transaction": self.transaction.to_text()}
        if self.on_violation is not None:
            payload["on_violation"] = self.on_violation
        if self.timeout is not None:
            payload["timeout"] = self.timeout
        if self.txn_id is not None:
            payload["txn_id"] = self.txn_id
        return payload

    @classmethod
    def from_params(cls, params: dict) -> "CommitRequest":
        policy = params.get("on_violation")
        if policy is not None and policy not in _POLICIES:
            raise WireFormatError(f"unknown on_violation policy: {policy!r}")
        timeout = params.get("timeout")
        if timeout is not None:
            if not isinstance(timeout, (int, float)) or timeout <= 0:
                raise WireFormatError("'timeout' must be a positive number")
            timeout = float(timeout)
        txn_id = params.get("txn_id")
        if txn_id is not None and (
                not isinstance(txn_id, str) or not txn_id.strip()):
            raise WireFormatError("'txn_id' must be a non-empty string")
        return cls(transaction=_wire_transaction(params),
                   on_violation=policy, timeout=timeout, txn_id=txn_id)

    def execute(self, engine: "DatabaseEngine") -> dict:
        outcome = engine.commit(self.transaction,
                                on_violation=self.on_violation,
                                timeout=self.timeout,
                                txn_id=self.txn_id)
        return outcome.to_dict()

    def run(self, processor: "UpdateProcessor"):
        return processor.execute(self.transaction,
                                 on_violation=self.on_violation or "reject")


@dataclass
class PrepareRequest(UpdateRequest):
    """2PC phase 1 (sharded serving): durably vote on one shard's slice.

    Only meaningful against a :class:`~repro.server.engine.DatabaseEngine`
    acting as a cross-shard-commit participant; see :mod:`repro.shard`.
    """

    op: ClassVar[str] = "prepare"
    transaction: Transaction = field(default_factory=Transaction)
    txn_id: str = ""

    def __post_init__(self) -> None:
        self.transaction = _coerce_transaction(self.transaction)

    def params(self) -> dict:
        return {"transaction": self.transaction.to_text(),
                "txn_id": self.txn_id}

    @classmethod
    def from_params(cls, params: dict) -> "PrepareRequest":
        return cls(transaction=_wire_transaction(params),
                   txn_id=_wire_string(params, "txn_id"))

    def execute(self, engine: "DatabaseEngine") -> dict:
        return engine.prepare(self.transaction, self.txn_id)


@dataclass
class DecideRequest(UpdateRequest):
    """2PC phase 2 (sharded serving): deliver the coordinator's decision."""

    op: ClassVar[str] = "decide"
    txn_id: str = ""
    decision: str = "abort"

    def params(self) -> dict:
        return {"txn_id": self.txn_id, "decision": self.decision}

    @classmethod
    def from_params(cls, params: dict) -> "DecideRequest":
        decision = _wire_string(params, "decision")
        if decision not in ("commit", "abort"):
            raise WireFormatError(
                f"'decision' must be 'commit' or 'abort', not {decision!r}")
        return cls(txn_id=_wire_string(params, "txn_id"), decision=decision)

    def execute(self, engine: "DatabaseEngine") -> dict:
        return engine.decide(self.txn_id, self.decision)


@dataclass
class SubscribeRequest(UpdateRequest):
    """Register a standing query; the server pushes change-feed frames.

    ``goals`` are derived-predicate goals, each a bare predicate name or
    an atom with constants at bound positions (``"Unemp(Maria)"``).  The
    subscription is bound to the *connection* that sent it: the server
    intercepts this op at the session layer and pushes frames down the
    same socket (see docs/SUBSCRIPTIONS.md), so executing it through the
    plain dispatcher -- which can only return one response -- is a typed
    error rather than a silently frame-less success.
    """

    op: ClassVar[str] = "subscribe"
    goals: tuple[str, ...] = ()
    #: Shard-internal: push a frame for every commit even when this
    #: subscription's restriction is empty, so a router's merger can tell
    #: a complete 2PC frame set from a still-incomplete one.
    emit_empty: bool = False

    def __post_init__(self) -> None:
        self.goals = tuple(self.goals)

    def params(self) -> dict:
        payload: dict = {"goals": list(self.goals)}
        if self.emit_empty:
            payload["emit_empty"] = True
        return payload

    @classmethod
    def from_params(cls, params: dict) -> "SubscribeRequest":
        from repro.server.feed import parse_goals

        raw = params.get("goals")
        if isinstance(raw, str):
            raw = [raw]
        if (not isinstance(raw, list) or not raw
                or not all(isinstance(g, str) for g in raw)):
            raise WireFormatError(
                "'goals' must be a non-empty list of goal strings "
                "(e.g. [\"Unemp\", \"Emp(x, Sales)\"])")
        parse_goals(raw)  # malformed filters fail at decode, typed
        return cls(goals=tuple(raw),
                   emit_empty=bool(params.get("emit_empty", False)))

    def execute(self, engine: "DatabaseEngine") -> dict:
        from repro.datalog.errors import SubscriptionError

        # Validate eagerly so a non-streaming host still yields the most
        # specific error (unknown/base predicates beat transport shape).
        check_goals = getattr(engine, "_check_goals", None)
        if check_goals is not None:
            check_goals(list(self.goals))
        raise SubscriptionError(
            "subscribe is only available on a streaming server "
            "connection; this transport cannot deliver feed frames")


@dataclass
class UnsubscribeRequest(UpdateRequest):
    """Deregister a standing query by its subscription id."""

    op: ClassVar[str] = "unsubscribe"
    subscription_id: str = ""

    def params(self) -> dict:
        return {"subscription_id": self.subscription_id}

    @classmethod
    def from_params(cls, params: dict) -> "UnsubscribeRequest":
        return cls(subscription_id=_wire_string(params, "subscription_id"))

    def execute(self, engine: "DatabaseEngine") -> dict:
        return engine.feed_unsubscribe(self.subscription_id)


@dataclass
class StatsRequest(UpdateRequest):
    """Engine + metrics (+ tracing aggregates, when enabled) snapshot."""

    op: ClassVar[str] = "stats"

    def execute(self, engine: "DatabaseEngine") -> dict:
        return engine.stats()


@dataclass
class CheckpointRequest(UpdateRequest):
    """Fold the WAL into a fresh snapshot."""

    op: ClassVar[str] = "checkpoint"

    def execute(self, engine: "DatabaseEngine") -> dict:
        engine.checkpoint()
        return {"checkpointed": True}


@dataclass
class HealthRequest(UpdateRequest):
    """Liveness/readiness probe: WAL, cache epoch, dedup, shed counters.

    Unlike ``stats`` this stays answerable on a closed (draining) engine
    and takes no locks -- it is meant for load balancers and retrying
    clients, not dashboards.
    """

    op: ClassVar[str] = "health"

    def execute(self, engine: "DatabaseEngine") -> dict:
        return engine.health()


__all__ = [
    "CacheMode",
    "CheckRequest",
    "CheckpointRequest",
    "CommitRequest",
    "DecideRequest",
    "DownwardRequest",
    "HealthRequest",
    "HelloRequest",
    "MonitorRequest",
    "PingRequest",
    "PrepareRequest",
    "QueryRequest",
    "REQUEST_TYPES",
    "RepairRequest",
    "StatsRequest",
    "SubscribeRequest",
    "UnsubscribeRequest",
    "UpdateRequest",
    "UpwardRequest",
    "WireFormatError",
]
